// Package client is the Go client of the networked recognition service
// (internal/server): typed calls over the same wire contracts, so operators
// embed recognition-as-a-service with the ergonomics of the in-process API.
//
//	c := client.New("http://127.0.0.1:8080", nil)
//	res, err := c.Recognize(ctx, frame)
//	st, err := c.OpenStream(ctx)
//	results, err := st.Submit(ctx, frames...)
//
// Batch and stream submissions default to the raw octet-stream encoding
// (frames travel as bare pixel planes, decoded server-side into pooled
// buffers); set JSONWire to force the base64 JSON encoding instead.
//
// The client is retry-aware: idempotent calls (Recognize, RecognizeBatch,
// RawBatch, Gesture, Healthz, Statsz, OpenStream) retry transient failures
// — network errors, 429/502/503/504 — with exponential backoff, full
// jitter, and the server's Retry-After honoured. Stream submissions never
// retry (resubmitting an ordered batch would double-recognise it); their
// failures surface to the caller, who owns the dedup decision. A circuit
// breaker opens after consecutive transport failures so a dead service
// costs callers ErrCircuitOpen instead of a timeout each. Every attempt
// runs under its own timeout (Options.Timeout), and a context deadline is
// forwarded to the server as X-Deadline-Ms so the replica stops working on
// frames the caller has already given up on.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"hdc/internal/raster"
	"hdc/internal/server"
)

// Options tunes the client's dependability behaviour. The zero value gives
// sane production defaults.
type Options struct {
	// HTTPClient overrides the transport. Nil builds one with Timeout as
	// its overall cap — never the zero-value http.Client, whose missing
	// timeout hangs a caller forever on a wedged server.
	HTTPClient *http.Client
	// Timeout bounds each attempt (default 30s; <0 disables).
	Timeout time.Duration
	// MaxAttempts is the total tries per idempotent call (default 3).
	MaxAttempts int
	// BaseBackoff is the first retry delay, doubling per attempt with full
	// jitter (default 100ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the computed backoff (default 2s). A server
	// Retry-After larger than the cap is still honoured.
	MaxBackoff time.Duration
	// BreakerThreshold is the consecutive-failure count that opens the
	// circuit (default 5; <0 disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit rejects calls before
	// letting one probe through (default 5s).
	BreakerCooldown time.Duration
	// JSONWire switches batch/stream frame uploads from the raw
	// octet-stream encoding to base64 JSON.
	JSONWire bool
	// now overrides the clock in tests.
	now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.Timeout == 0 {
		o.Timeout = 30 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 100 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 2 * time.Second
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 5 * time.Second
	}
	if o.now == nil {
		o.now = time.Now
	}
	if o.HTTPClient == nil {
		hc := &http.Client{}
		if o.Timeout > 0 {
			hc.Timeout = o.Timeout
		}
		o.HTTPClient = hc
	}
	return o
}

// Client talks to one recognition service.
type Client struct {
	base string
	hc   *http.Client
	opts Options
	brk  breaker
	// JSONWire switches batch/stream frame uploads from the raw
	// octet-stream encoding to base64 JSON. (Kept as a field for
	// compatibility; NewWithOptions callers set Options.JSONWire.)
	JSONWire bool
}

// New builds a client for the service at base (e.g. "http://host:8080")
// with default options. A nil hc builds a transport with the default
// per-attempt timeout — not http.DefaultClient, which has none.
func New(base string, hc *http.Client) *Client {
	return NewWithOptions(base, Options{HTTPClient: hc})
}

// NewWithOptions builds a client with explicit dependability options.
func NewWithOptions(base string, opts Options) *Client {
	o := opts.withDefaults()
	c := &Client{base: base, hc: o.HTTPClient, opts: o, JSONWire: o.JSONWire}
	c.brk.threshold = o.BreakerThreshold
	c.brk.cooldown = o.BreakerCooldown
	return c
}

// APIError is a non-2xx service answer.
type APIError struct {
	Status int
	Msg    string
	// RetryAfter is the server's requested backoff (429/503), zero when
	// the response carried none.
	RetryAfter time.Duration
}

// Error renders the status and the server's message; APIError satisfies the
// error interface so callers can errors.As for the HTTP status.
func (e *APIError) Error() string {
	return fmt.Sprintf("server: %d: %s", e.Status, e.Msg)
}

// ErrDraining reports that the service refused work because it is shutting
// down; retry against another replica.
var ErrDraining = errors.New("client: service draining")

// ErrCircuitOpen reports that the client's circuit breaker is open after
// consecutive transport failures: the call never reached the network. It
// closes again after Options.BreakerCooldown.
var ErrCircuitOpen = errors.New("client: circuit open")

// breaker is a consecutive-failure circuit breaker. After threshold
// failures in a row the circuit opens for cooldown; the first call after
// the cooldown probes the service (half-open) — its failure reopens the
// circuit immediately, its success closes it.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu        sync.Mutex
	failures  int
	openUntil time.Time
}

// allow reports whether a call may proceed.
func (b *breaker) allow(now time.Time) bool {
	if b.threshold < 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return !now.Before(b.openUntil)
}

// success closes the circuit.
func (b *breaker) success() {
	b.mu.Lock()
	b.failures = 0
	b.openUntil = time.Time{}
	b.mu.Unlock()
}

// failure counts one transport failure, opening the circuit at threshold.
// The count is left at the threshold so a half-open probe's failure reopens
// immediately.
func (b *breaker) failure(now time.Time) {
	if b.threshold < 0 {
		return
	}
	b.mu.Lock()
	if b.failures < b.threshold {
		b.failures++
	}
	if b.failures >= b.threshold {
		b.openUntil = now.Add(b.cooldown)
	}
	b.mu.Unlock()
}

// decodeError turns a non-2xx response into an error.
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var er struct {
		Error string `json:"error"`
	}
	_ = json.Unmarshal(body, &er)
	if resp.StatusCode == http.StatusServiceUnavailable {
		return fmt.Errorf("%w: %s", ErrDraining, er.Error)
	}
	apiErr := &APIError{Status: resp.StatusCode, Msg: er.Error}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return apiErr
}

// retriable classifies an error as transient: transport failures and the
// shed/unavailable statuses. Client mistakes (4xx other than 429) are not.
func retriable(err error) bool {
	if errors.Is(err, ErrDraining) {
		return true
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		switch apiErr.Status {
		case http.StatusTooManyRequests, http.StatusBadGateway,
			http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return true
		}
		return false
	}
	// Anything else is a transport-level failure (refused, reset, timed
	// out) — worth another attempt.
	return true
}

// retryDelay is the wait before attempt n (1-based retry index):
// exponential from BaseBackoff with full jitter, capped at MaxBackoff —
// unless the server asked for a specific Retry-After, which wins.
func (c *Client) retryDelay(retry int, lastErr error) time.Duration {
	d := c.opts.BaseBackoff << uint(retry-1)
	if d > c.opts.MaxBackoff || d <= 0 {
		d = c.opts.MaxBackoff
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	var apiErr *APIError
	if errors.As(lastErr, &apiErr) && apiErr.RetryAfter > d {
		d = apiErr.RetryAfter
	}
	return d
}

// sleep waits d or until ctx ends.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// doOnce runs one request and decodes a JSON body into out (unless nil).
func (c *Client) doOnce(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeError(resp)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// do runs one non-retried request under the breaker (stream submissions,
// deletes).
func (c *Client) do(req *http.Request, out any) error {
	if !c.brk.allow(c.opts.now()) {
		return ErrCircuitOpen
	}
	err := c.doOnce(req, out)
	if err != nil && retriable(err) {
		c.brk.failure(c.opts.now())
	} else if err == nil {
		c.brk.success()
	}
	return err
}

// doRetry runs build→send up to MaxAttempts times for an idempotent call.
// build is invoked per attempt with that attempt's context (the request
// body must be rebuilt — an io.Reader is consumed by a failed send).
func (c *Client) doRetry(ctx context.Context, build func(ctx context.Context) (*http.Request, error), out any) error {
	var lastErr error
	for attempt := 0; attempt < c.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			if err := sleep(ctx, c.retryDelay(attempt, lastErr)); err != nil {
				return lastErr
			}
		}
		if !c.brk.allow(c.opts.now()) {
			if lastErr != nil {
				return fmt.Errorf("%w (last error: %v)", ErrCircuitOpen, lastErr)
			}
			return ErrCircuitOpen
		}
		actx, cancel := ctx, context.CancelFunc(func() {})
		if c.opts.Timeout > 0 {
			actx, cancel = context.WithTimeout(ctx, c.opts.Timeout)
		}
		req, err := build(actx)
		if err != nil {
			cancel()
			return err
		}
		err = c.doOnce(req, out)
		cancel()
		if err == nil {
			c.brk.success()
			return nil
		}
		lastErr = err
		if !retriable(err) {
			return err
		}
		c.brk.failure(c.opts.now())
		if ctx.Err() != nil {
			return lastErr
		}
	}
	return lastErr
}

// jsonWire reports the effective wire choice (field overrides option).
func (c *Client) jsonWire() bool { return c.JSONWire || c.opts.JSONWire }

// frameBody encodes frames for upload. All frames of a raw batch must share
// one geometry; mixed sizes fall back to JSON automatically.
func (c *Client) frameBody(frames []*raster.Gray, single bool) (io.Reader, string, map[string]string, error) {
	for _, f := range frames {
		if f == nil {
			return nil, "", nil, errors.New("client: nil frame")
		}
	}
	raw := !c.jsonWire()
	for _, f := range frames[1:] {
		if f.W != frames[0].W || f.H != frames[0].H {
			raw = false
			break
		}
	}
	if raw {
		var buf bytes.Buffer
		buf.Grow(len(frames) * len(frames[0].Pix))
		for _, f := range frames {
			buf.Write(f.Pix)
		}
		hdr := map[string]string{
			"X-Frame-Width":  strconv.Itoa(frames[0].W),
			"X-Frame-Height": strconv.Itoa(frames[0].H),
		}
		if !single {
			hdr["X-Frame-Count"] = strconv.Itoa(len(frames))
		}
		return &buf, "application/octet-stream", hdr, nil
	}
	var payload any
	if single {
		payload = server.FrameFromRaster(frames[0])
	} else {
		wire := make([]server.Frame, len(frames))
		for i, f := range frames {
			wire[i] = server.FrameFromRaster(f)
		}
		payload = struct {
			Frames []server.Frame `json:"frames"`
		}{wire}
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return nil, "", nil, err
	}
	return bytes.NewReader(body), "application/json", nil, nil
}

// setDeadlineHeader forwards the context's deadline (if any) to the server
// as X-Deadline-Ms, so a replica stops recognising frames the caller has
// already abandoned.
func setDeadlineHeader(req *http.Request, ctx context.Context, now func() time.Time) {
	dl, ok := ctx.Deadline()
	if !ok {
		return
	}
	ms := dl.Sub(now()).Milliseconds()
	if ms < 1 {
		ms = 1
	}
	req.Header.Set(server.DeadlineHeader, strconv.FormatInt(ms, 10))
}

// post builds a frame-carrying POST.
func (c *Client) post(ctx context.Context, path string, frames []*raster.Gray, single bool) (*http.Request, error) {
	body, ct, hdr, err := c.frameBody(frames, single)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", ct)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	setDeadlineHeader(req, ctx, c.opts.now)
	return req, nil
}

// Post builds (without sending) a frame-carrying POST request for path —
// the escape hatch for drivers and tests that need direct control of
// headers and transport.
func (c *Client) Post(ctx context.Context, path string, frames []*raster.Gray) (*http.Request, error) {
	return c.post(ctx, path, frames, false)
}

// Recognize submits one frame to POST /v1/recognize. Transient failures
// retry with backoff.
func (c *Client) Recognize(ctx context.Context, frame *raster.Gray) (server.FrameResult, error) {
	var out server.FrameResult
	err := c.doRetry(ctx, func(actx context.Context) (*http.Request, error) {
		return c.post(actx, "/v1/recognize", []*raster.Gray{frame}, true)
	}, &out)
	if err != nil {
		return server.FrameResult{}, err
	}
	return out, nil
}

// RecognizeBatch submits an ordered batch to POST /v1/batch and returns one
// result per frame, in input order. Transient failures retry with backoff —
// a batch is stateless on the server, so a retried send cannot double-count.
func (c *Client) RecognizeBatch(ctx context.Context, frames []*raster.Gray) ([]server.FrameResult, error) {
	if len(frames) == 0 {
		return nil, nil
	}
	var out struct {
		Results []server.FrameResult `json:"results"`
	}
	err := c.doRetry(ctx, func(actx context.Context) (*http.Request, error) {
		return c.post(actx, "/v1/batch", frames, false)
	}, &out)
	if err != nil {
		return nil, err
	}
	if len(out.Results) != len(frames) {
		return out.Results, fmt.Errorf("client: %d results for %d frames", len(out.Results), len(frames))
	}
	return out.Results, nil
}

// rawRequest builds an octet-stream POST from a pre-encoded payload.
func (c *Client) rawRequest(ctx context.Context, path string, w, h, count int, payload []byte) (*http.Request, error) {
	if len(payload) != w*h*count {
		return nil, fmt.Errorf("client: payload %d bytes for %d %dx%d frames", len(payload), count, w, h)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set("X-Frame-Width", strconv.Itoa(w))
	req.Header.Set("X-Frame-Height", strconv.Itoa(h))
	req.Header.Set("X-Frame-Count", strconv.Itoa(count))
	setDeadlineHeader(req, ctx, c.opts.now)
	return req, nil
}

// EncodeRaw pre-encodes frames into one octet-stream payload for
// RawBatch/SubmitRaw: operators that resubmit the same capture buffer (ring
// buffers, load generators) pay the encode once instead of per request.
func EncodeRaw(frames []*raster.Gray) (w, h int, payload []byte, err error) {
	if len(frames) == 0 {
		return 0, 0, nil, errors.New("client: no frames")
	}
	w, h = frames[0].W, frames[0].H
	payload = make([]byte, 0, len(frames)*w*h)
	for _, f := range frames {
		if f == nil || f.W != w || f.H != h {
			return 0, 0, nil, errors.New("client: raw batches need uniform frame geometry")
		}
		payload = append(payload, f.Pix...)
	}
	return w, h, payload, nil
}

// RawBatch is RecognizeBatch over a pre-encoded payload (see EncodeRaw).
func (c *Client) RawBatch(ctx context.Context, w, h, count int, payload []byte) ([]server.FrameResult, error) {
	var out struct {
		Results []server.FrameResult `json:"results"`
	}
	err := c.doRetry(ctx, func(actx context.Context) (*http.Request, error) {
		return c.rawRequest(actx, "/v1/batch", w, h, count, payload)
	}, &out)
	if err != nil {
		return nil, err
	}
	return out.Results, nil
}

// Stream is a session-scoped ordered stream on the service.
type Stream struct {
	c      *Client
	ID     string
	Window int
}

// OpenStream creates a session (POST /v1/streams). Opening retries —
// an orphaned session from an ambiguous first attempt is reaped by the
// server's idle timer, so retrying is safe.
func (c *Client) OpenStream(ctx context.Context) (*Stream, error) {
	var info struct {
		ID     string `json:"id"`
		Window int    `json:"window"`
	}
	err := c.doRetry(ctx, func(actx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(actx, http.MethodPost, c.base+"/v1/streams", nil)
	}, &info)
	if err != nil {
		return nil, err
	}
	return &Stream{c: c, ID: info.ID, Window: info.Window}, nil
}

// Submit pushes frames onto the stream and returns their ordered results.
// A result tail marked "draining" means the service shut down mid-request;
// "deadline" means the request's deadline expired and the session was
// sacrificed. Submissions are NOT retried: the stream is ordered and
// stateful, so resubmitting an ambiguous batch would double-recognise it —
// the caller decides whether to resend or abandon the session.
func (s *Stream) Submit(ctx context.Context, frames ...*raster.Gray) ([]server.FrameResult, error) {
	if len(frames) == 0 {
		return nil, nil
	}
	req, err := s.c.post(ctx, "/v1/streams/"+s.ID+"/frames", frames, false)
	if err != nil {
		return nil, err
	}
	var out struct {
		Results []server.FrameResult `json:"results"`
	}
	if err := s.c.do(req, &out); err != nil {
		return nil, err
	}
	if len(out.Results) != len(frames) {
		return out.Results, fmt.Errorf("client: %d results for %d frames", len(out.Results), len(frames))
	}
	return out.Results, nil
}

// SubmitRaw is Submit over a pre-encoded payload (see EncodeRaw). Like
// Submit it never retries.
func (s *Stream) SubmitRaw(ctx context.Context, w, h, count int, payload []byte) ([]server.FrameResult, error) {
	req, err := s.c.rawRequest(ctx, "/v1/streams/"+s.ID+"/frames", w, h, count, payload)
	if err != nil {
		return nil, err
	}
	var out struct {
		Results []server.FrameResult `json:"results"`
	}
	if err := s.c.do(req, &out); err != nil {
		return nil, err
	}
	return out.Results, nil
}

// Close ends the session (DELETE /v1/streams/{id}).
func (s *Stream) Close(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, s.c.base+"/v1/streams/"+s.ID, nil)
	if err != nil {
		return err
	}
	return s.c.do(req, nil)
}

// Gesture submits one complete gesture observation window to POST
// /v1/gesture and returns its verdict. An unrecognised window is not an
// error at this layer: the result carries Err == "no_gesture". Transient
// failures retry (a gesture window is stateless server-side).
func (c *Client) Gesture(ctx context.Context, frames []*raster.Gray) (server.GestureResult, error) {
	if len(frames) == 0 {
		return server.GestureResult{}, errors.New("client: no frames")
	}
	var out server.GestureResult
	err := c.doRetry(ctx, func(actx context.Context) (*http.Request, error) {
		return c.post(actx, "/v1/gesture", frames, false)
	}, &out)
	if err != nil {
		return server.GestureResult{}, err
	}
	return out, nil
}

// GestureStream is a live-feed gesture session: frames offered to it enter
// the server-side ingest ring (drop-oldest under overload) and verdicts are
// polled back with each push.
type GestureStream struct {
	c      *Client
	ID     string
	Window int // server-side ingest ring capacity
}

// OpenGestureStream creates a live gesture session (POST /v1/gesture/streams).
func (c *Client) OpenGestureStream(ctx context.Context) (*GestureStream, error) {
	var info struct {
		ID     string `json:"id"`
		Window int    `json:"window"`
	}
	err := c.doRetry(ctx, func(actx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(actx, http.MethodPost, c.base+"/v1/gesture/streams", nil)
	}, &info)
	if err != nil {
		return nil, err
	}
	return &GestureStream{c: c, ID: info.ID, Window: info.Window}, nil
}

// Offer pushes live frames at the session and returns the feed snapshot:
// ingest counters plus the sliding-window verdicts completed since the last
// push. The call returns at capture cadence — a saturated pool shows up in
// the snapshot's Dropped count, never as a stalled request. Offers are not
// retried (the ingest ring is stateful).
func (s *GestureStream) Offer(ctx context.Context, frames ...*raster.Gray) (server.GestureFeed, error) {
	var out server.GestureFeed
	if len(frames) == 0 {
		return out, errors.New("client: no frames")
	}
	req, err := s.c.post(ctx, "/v1/gesture/streams/"+s.ID+"/frames", frames, false)
	if err != nil {
		return out, err
	}
	err = s.c.do(req, &out)
	return out, err
}

// Close ends the session gracefully: the server flushes the queued frames
// through its pool and the returned feed carries the final verdicts.
func (s *GestureStream) Close(ctx context.Context) (server.GestureFeed, error) {
	var out server.GestureFeed
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, s.c.base+"/v1/gesture/streams/"+s.ID, nil)
	if err != nil {
		return out, err
	}
	err = s.c.do(req, &out)
	return out, err
}

// Healthz reports whether the service is accepting work (the legacy
// combined health probe; see Readyz/Livez for the split).
func (c *Client) Healthz(ctx context.Context) error {
	return c.doRetry(ctx, func(actx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(actx, http.MethodGet, c.base+"/healthz", nil)
	}, nil)
}

// Livez reports process liveness: an error means the process itself is not
// answering (restart material), not that it is merely unroutable.
func (c *Client) Livez(ctx context.Context) error {
	return c.doRetry(ctx, func(actx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(actx, http.MethodGet, c.base+"/livez", nil)
	}, nil)
}

// Readyz reports whether this replica should receive new work; the error
// for an unready replica carries the server's reasons.
func (c *Client) Readyz(ctx context.Context) error {
	return c.doRetry(ctx, func(actx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(actx, http.MethodGet, c.base+"/readyz", nil)
	}, nil)
}

// Statsz fetches the service's occupancy/latency snapshot.
func (c *Client) Statsz(ctx context.Context) (server.StatsResponse, error) {
	var out server.StatsResponse
	err := c.doRetry(ctx, func(actx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(actx, http.MethodGet, c.base+"/statsz", nil)
	}, &out)
	return out, err
}

// Tracez fetches the service's per-frame trace snapshot: recent completed
// frame traces (stage spans, owner label, terminal event) plus the
// cumulative per-stage latency breakdown. limit bounds the per-frame
// records; 0 takes the server default.
func (c *Client) Tracez(ctx context.Context, limit int) (server.TracezResponse, error) {
	url := c.base + "/tracez"
	if limit > 0 {
		url += fmt.Sprintf("?limit=%d", limit)
	}
	var out server.TracezResponse
	err := c.doRetry(ctx, func(actx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(actx, http.MethodGet, url, nil)
	}, &out)
	return out, err
}
