// Package client is the Go client of the networked recognition service
// (internal/server): typed calls over the same wire contracts, so operators
// embed recognition-as-a-service with the ergonomics of the in-process API.
//
//	c := client.New("http://127.0.0.1:8080", nil)
//	res, err := c.Recognize(ctx, frame)
//	st, err := c.OpenStream(ctx)
//	results, err := st.Submit(ctx, frames...)
//
// Batch and stream submissions default to the raw octet-stream encoding
// (frames travel as bare pixel planes, decoded server-side into pooled
// buffers); set JSONWire to force the base64 JSON encoding instead.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"hdc/internal/raster"
	"hdc/internal/server"
)

// Client talks to one recognition service.
type Client struct {
	base string
	hc   *http.Client
	// JSONWire switches batch/stream frame uploads from the raw
	// octet-stream encoding to base64 JSON.
	JSONWire bool
}

// New builds a client for the service at base (e.g. "http://host:8080").
// A nil hc uses http.DefaultClient.
func New(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: base, hc: hc}
}

// APIError is a non-2xx service answer.
type APIError struct {
	Status int
	Msg    string
}

// Error renders the status and the server's message; APIError satisfies the
// error interface so callers can errors.As for the HTTP status.
func (e *APIError) Error() string {
	return fmt.Sprintf("server: %d: %s", e.Status, e.Msg)
}

// ErrDraining reports that the service refused work because it is shutting
// down; retry against another replica.
var ErrDraining = errors.New("client: service draining")

// decodeError turns a non-2xx response into an error.
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var er struct {
		Error string `json:"error"`
	}
	_ = json.Unmarshal(body, &er)
	if resp.StatusCode == http.StatusServiceUnavailable {
		return fmt.Errorf("%w: %s", ErrDraining, er.Error)
	}
	return &APIError{Status: resp.StatusCode, Msg: er.Error}
}

// do runs one request and decodes a JSON body into out (unless nil).
func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeError(resp)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// frameBody encodes frames for upload. All frames of a raw batch must share
// one geometry; mixed sizes fall back to JSON automatically.
func (c *Client) frameBody(frames []*raster.Gray, single bool) (io.Reader, string, map[string]string, error) {
	for _, f := range frames {
		if f == nil {
			return nil, "", nil, errors.New("client: nil frame")
		}
	}
	raw := !c.JSONWire
	for _, f := range frames[1:] {
		if f.W != frames[0].W || f.H != frames[0].H {
			raw = false
			break
		}
	}
	if raw {
		var buf bytes.Buffer
		buf.Grow(len(frames) * len(frames[0].Pix))
		for _, f := range frames {
			buf.Write(f.Pix)
		}
		hdr := map[string]string{
			"X-Frame-Width":  strconv.Itoa(frames[0].W),
			"X-Frame-Height": strconv.Itoa(frames[0].H),
		}
		if !single {
			hdr["X-Frame-Count"] = strconv.Itoa(len(frames))
		}
		return &buf, "application/octet-stream", hdr, nil
	}
	var payload any
	if single {
		payload = server.FrameFromRaster(frames[0])
	} else {
		wire := make([]server.Frame, len(frames))
		for i, f := range frames {
			wire[i] = server.FrameFromRaster(f)
		}
		payload = struct {
			Frames []server.Frame `json:"frames"`
		}{wire}
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return nil, "", nil, err
	}
	return bytes.NewReader(body), "application/json", nil, nil
}

// post builds a frame-carrying POST.
func (c *Client) post(ctx context.Context, path string, frames []*raster.Gray, single bool) (*http.Request, error) {
	body, ct, hdr, err := c.frameBody(frames, single)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", ct)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	return req, nil
}

// Recognize submits one frame to POST /v1/recognize.
func (c *Client) Recognize(ctx context.Context, frame *raster.Gray) (server.FrameResult, error) {
	req, err := c.post(ctx, "/v1/recognize", []*raster.Gray{frame}, true)
	if err != nil {
		return server.FrameResult{}, err
	}
	var out server.FrameResult
	if err := c.do(req, &out); err != nil {
		return server.FrameResult{}, err
	}
	return out, nil
}

// RecognizeBatch submits an ordered batch to POST /v1/batch and returns one
// result per frame, in input order.
func (c *Client) RecognizeBatch(ctx context.Context, frames []*raster.Gray) ([]server.FrameResult, error) {
	if len(frames) == 0 {
		return nil, nil
	}
	req, err := c.post(ctx, "/v1/batch", frames, false)
	if err != nil {
		return nil, err
	}
	var out struct {
		Results []server.FrameResult `json:"results"`
	}
	if err := c.do(req, &out); err != nil {
		return nil, err
	}
	if len(out.Results) != len(frames) {
		return out.Results, fmt.Errorf("client: %d results for %d frames", len(out.Results), len(frames))
	}
	return out.Results, nil
}

// rawRequest builds an octet-stream POST from a pre-encoded payload.
func (c *Client) rawRequest(ctx context.Context, path string, w, h, count int, payload []byte) (*http.Request, error) {
	if len(payload) != w*h*count {
		return nil, fmt.Errorf("client: payload %d bytes for %d %dx%d frames", len(payload), count, w, h)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set("X-Frame-Width", strconv.Itoa(w))
	req.Header.Set("X-Frame-Height", strconv.Itoa(h))
	req.Header.Set("X-Frame-Count", strconv.Itoa(count))
	return req, nil
}

// EncodeRaw pre-encodes frames into one octet-stream payload for
// RawBatch/SubmitRaw: operators that resubmit the same capture buffer (ring
// buffers, load generators) pay the encode once instead of per request.
func EncodeRaw(frames []*raster.Gray) (w, h int, payload []byte, err error) {
	if len(frames) == 0 {
		return 0, 0, nil, errors.New("client: no frames")
	}
	w, h = frames[0].W, frames[0].H
	payload = make([]byte, 0, len(frames)*w*h)
	for _, f := range frames {
		if f == nil || f.W != w || f.H != h {
			return 0, 0, nil, errors.New("client: raw batches need uniform frame geometry")
		}
		payload = append(payload, f.Pix...)
	}
	return w, h, payload, nil
}

// RawBatch is RecognizeBatch over a pre-encoded payload (see EncodeRaw).
func (c *Client) RawBatch(ctx context.Context, w, h, count int, payload []byte) ([]server.FrameResult, error) {
	req, err := c.rawRequest(ctx, "/v1/batch", w, h, count, payload)
	if err != nil {
		return nil, err
	}
	var out struct {
		Results []server.FrameResult `json:"results"`
	}
	if err := c.do(req, &out); err != nil {
		return nil, err
	}
	return out.Results, nil
}

// Stream is a session-scoped ordered stream on the service.
type Stream struct {
	c      *Client
	ID     string
	Window int
}

// OpenStream creates a session (POST /v1/streams).
func (c *Client) OpenStream(ctx context.Context) (*Stream, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/streams", nil)
	if err != nil {
		return nil, err
	}
	var info struct {
		ID     string `json:"id"`
		Window int    `json:"window"`
	}
	if err := c.do(req, &info); err != nil {
		return nil, err
	}
	return &Stream{c: c, ID: info.ID, Window: info.Window}, nil
}

// Submit pushes frames onto the stream and returns their ordered results.
// A result tail marked "draining" means the service shut down mid-request.
func (s *Stream) Submit(ctx context.Context, frames ...*raster.Gray) ([]server.FrameResult, error) {
	if len(frames) == 0 {
		return nil, nil
	}
	req, err := s.c.post(ctx, "/v1/streams/"+s.ID+"/frames", frames, false)
	if err != nil {
		return nil, err
	}
	var out struct {
		Results []server.FrameResult `json:"results"`
	}
	if err := s.c.do(req, &out); err != nil {
		return nil, err
	}
	if len(out.Results) != len(frames) {
		return out.Results, fmt.Errorf("client: %d results for %d frames", len(out.Results), len(frames))
	}
	return out.Results, nil
}

// SubmitRaw is Submit over a pre-encoded payload (see EncodeRaw).
func (s *Stream) SubmitRaw(ctx context.Context, w, h, count int, payload []byte) ([]server.FrameResult, error) {
	req, err := s.c.rawRequest(ctx, "/v1/streams/"+s.ID+"/frames", w, h, count, payload)
	if err != nil {
		return nil, err
	}
	var out struct {
		Results []server.FrameResult `json:"results"`
	}
	if err := s.c.do(req, &out); err != nil {
		return nil, err
	}
	return out.Results, nil
}

// Close ends the session (DELETE /v1/streams/{id}).
func (s *Stream) Close(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, s.c.base+"/v1/streams/"+s.ID, nil)
	if err != nil {
		return err
	}
	return s.c.do(req, nil)
}

// Gesture submits one complete gesture observation window to POST
// /v1/gesture and returns its verdict. An unrecognised window is not an
// error at this layer: the result carries Err == "no_gesture".
func (c *Client) Gesture(ctx context.Context, frames []*raster.Gray) (server.GestureResult, error) {
	if len(frames) == 0 {
		return server.GestureResult{}, errors.New("client: no frames")
	}
	req, err := c.post(ctx, "/v1/gesture", frames, false)
	if err != nil {
		return server.GestureResult{}, err
	}
	var out server.GestureResult
	if err := c.do(req, &out); err != nil {
		return server.GestureResult{}, err
	}
	return out, nil
}

// GestureStream is a live-feed gesture session: frames offered to it enter
// the server-side ingest ring (drop-oldest under overload) and verdicts are
// polled back with each push.
type GestureStream struct {
	c      *Client
	ID     string
	Window int // server-side ingest ring capacity
}

// OpenGestureStream creates a live gesture session (POST /v1/gesture/streams).
func (c *Client) OpenGestureStream(ctx context.Context) (*GestureStream, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/gesture/streams", nil)
	if err != nil {
		return nil, err
	}
	var info struct {
		ID     string `json:"id"`
		Window int    `json:"window"`
	}
	if err := c.do(req, &info); err != nil {
		return nil, err
	}
	return &GestureStream{c: c, ID: info.ID, Window: info.Window}, nil
}

// Offer pushes live frames at the session and returns the feed snapshot:
// ingest counters plus the sliding-window verdicts completed since the last
// push. The call returns at capture cadence — a saturated pool shows up in
// the snapshot's Dropped count, never as a stalled request.
func (s *GestureStream) Offer(ctx context.Context, frames ...*raster.Gray) (server.GestureFeed, error) {
	var out server.GestureFeed
	if len(frames) == 0 {
		return out, errors.New("client: no frames")
	}
	req, err := s.c.post(ctx, "/v1/gesture/streams/"+s.ID+"/frames", frames, false)
	if err != nil {
		return out, err
	}
	err = s.c.do(req, &out)
	return out, err
}

// Close ends the session gracefully: the server flushes the queued frames
// through its pool and the returned feed carries the final verdicts.
func (s *GestureStream) Close(ctx context.Context) (server.GestureFeed, error) {
	var out server.GestureFeed
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, s.c.base+"/v1/gesture/streams/"+s.ID, nil)
	if err != nil {
		return out, err
	}
	err = s.c.do(req, &out)
	return out, err
}

// Healthz reports whether the service is accepting work.
func (c *Client) Healthz(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	return c.do(req, nil)
}

// Statsz fetches the service's occupancy/latency snapshot.
func (c *Client) Statsz(ctx context.Context) (server.StatsResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/statsz", nil)
	if err != nil {
		return server.StatsResponse{}, err
	}
	var out server.StatsResponse
	err = c.do(req, &out)
	return out, err
}
