// Package server is the networked recognition service: an HTTP/JSON front
// over one shared core.System worker pool, so many concurrent operators
// (ground stations, fleet supervisors, analysis jobs) draw on a single
// recognition capacity pool instead of each owning a pipeline. The paper's
// one-drone/one-recogniser loop stays intact underneath; this layer is the
// ROADMAP's "batch negotiation service" scaling step, shaped after the
// shared perception boundary of dataflow robotic middlewares.
//
// Endpoints:
//
//	POST   /v1/recognize           one frame  → one FrameResult
//	POST   /v1/batch               ordered batch → per-frame FrameResults
//	POST   /v1/streams             open a session-scoped ordered stream
//	POST   /v1/streams/{id}/frames submit frames, receive their ordered results
//	GET    /v1/streams/{id}        session info
//	DELETE /v1/streams/{id}        close the session
//	POST   /v1/gesture             classify one gesture observation window
//	POST   /v1/gesture/streams     open a live-feed gesture session (ring-buffer ingest)
//	POST   /v1/gesture/streams/{id}/frames  offer live frames, poll verdicts
//	GET    /v1/gesture/streams/{id}         session counters
//	DELETE /v1/gesture/streams/{id}         flush and fetch final verdicts
//	GET    /v1/graph               served dataflow workloads + live per-graph stats
//	POST   /v1/graph/{workload}    one batch through a served graph (recognize, gesture,
//	                               ledring, imu, flight — see graph.go)
//	GET    /healthz                liveness + drain signal
//	GET    /statsz                 pool occupancy, ingest drops, per-endpoint latency, mem
//
// The gesture endpoints exist when Options.Gesture is set; live sessions put
// a bounded drop-oldest ring (pipeline.Source) in front of the pool so a
// camera-cadence feed degrades to frame dropping instead of stalling.
//
// Frames travel as JSON (width/height + base64 pixels), raw
// application/octet-stream planes (the allocation-free hot path: pixels are
// read straight into pooled raster.Gray buffers) or single image/png bodies.
// See DESIGN.md §"The service layer" for the wire contracts and drain
// semantics.
package server

import (
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"hdc/internal/core"
	"hdc/internal/failpoint"
	"hdc/internal/gesture"
	"hdc/internal/graph"
	"hdc/internal/raster"
	"hdc/internal/sax/store"
)

// Options tunes the service. The zero value serves with the defaults.
type Options struct {
	// MaxBatch bounds the frames accepted by one batch or stream-frames
	// request (default 256).
	MaxBatch int
	// MaxBodyBytes caps a request body before any decoding starts (default
	// 64 MB) — oversized uploads fail fast instead of materialising.
	MaxBodyBytes int64
	// StreamIdleTimeout is how long a stream session may sit idle before
	// the reaper abandons it (default 2 minutes).
	StreamIdleTimeout time.Duration
	// Gesture enables the dynamic-signal endpoints (/v1/gesture and the
	// live-feed gesture sessions) when set; the recogniser shares the
	// system's worker pool through its proc-stream hook. Nil leaves the
	// endpoints answering 404.
	Gesture *gesture.Recognizer
	// GestureBuffer overrides the live sessions' ingest ring capacity
	// (default: two observation windows).
	GestureBuffer int
	// Store, when set, is the on-disk sign dictionary backing the system's
	// recognizer (internal/sax/store). The server does not own it — the
	// process that opened it closes it after shutdown — but /statsz reports
	// its shape (segments, tail, WAL backlog, compaction health), and a
	// store latched read-only (sticky write failure) drops the replica out
	// of readiness and flips recognition to degraded stage-0 answers.
	Store *store.Store
	// MaxInflightFrames is the admission-control cap: the total frames
	// allowed in recognize/batch/stream-frames requests at once (default
	// 1024). A request that would cross it answers 429 with Retry-After so
	// overload sheds at the door instead of queueing unboundedly.
	MaxInflightFrames int
	// DegradeWatermark is the pool-queue occupancy fraction (default 0.75)
	// past which /v1/recognize and /v1/batch answer from the cascade's
	// cheap stage-0 path, marked degraded:true, instead of joining the
	// backlog. ≥1 never triggers on queue depth (a read-only store still
	// degrades).
	DegradeWatermark float64
	// DebugFailpoints mounts /failpointz (list/arm/disarm fault-injection
	// points). Debug builds and chaos drills only — never production.
	DebugFailpoints bool
	// now overrides the clock in tests.
	now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 256
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 64 << 20
	}
	if o.StreamIdleTimeout <= 0 {
		o.StreamIdleTimeout = 2 * time.Minute
	}
	if o.MaxInflightFrames <= 0 {
		o.MaxInflightFrames = 1024
	}
	if o.DegradeWatermark <= 0 {
		o.DegradeWatermark = 0.75
	}
	if o.now == nil {
		o.now = time.Now
	}
	return o
}

// Server fronts one core.System. It implements http.Handler; mount it on
// any mux or serve it directly. Construct with New, stop with Close.
type Server struct {
	sys  *core.System
	opts Options
	mux  *http.ServeMux

	framePool raster.Pool
	sessions  *sessionTable
	started   time.Time
	draining  atomic.Bool

	inflight atomic.Int64  // admission-control frame budget currently out
	rejected atomic.Uint64 // requests refused with 429
	degraded atomic.Uint64 // frames answered from the stage-0 path

	statRecognize endpointStats
	statBatch     endpointStats
	statStream    endpointStats
	statGesture   endpointStats
	statFeed      endpointStats
	statGraph     endpointStats

	// graphs is the lazily built registry of served dataflow topologies
	// (graph.go); graphsClosed latches once Close tears them down so a late
	// request cannot rebuild a graph on a closing pool.
	graphMu      sync.Mutex
	graphs       map[string]*graph.Graph
	graphsClosed bool
}

// New builds the service over sys. The system's worker pool starts lazily
// with the first recognition request; the caller keeps ownership of sys and
// closes it after the server (see Drain for the ordering).
func New(sys *core.System, opts Options) *Server {
	s := &Server{
		sys:  sys,
		opts: opts.withDefaults(),
		mux:  http.NewServeMux(),
	}
	s.started = s.opts.now()
	s.sessions = newSessionTable(s.opts.StreamIdleTimeout, s.opts.now)

	s.mux.HandleFunc("POST /v1/recognize", s.instrument(&s.statRecognize, s.handleRecognize))
	s.mux.HandleFunc("POST /v1/batch", s.instrument(&s.statBatch, s.handleBatch))
	s.mux.HandleFunc("POST /v1/streams", s.handleStreamCreate)
	s.mux.HandleFunc("GET /v1/streams/{id}", s.handleStreamInfo)
	s.mux.HandleFunc("POST /v1/streams/{id}/frames", s.instrument(&s.statStream, s.handleStreamFrames))
	s.mux.HandleFunc("DELETE /v1/streams/{id}", s.handleStreamDelete)
	if s.opts.Gesture != nil {
		s.mux.HandleFunc("POST /v1/gesture", s.instrument(&s.statGesture, s.handleGesture))
		s.mux.HandleFunc("POST /v1/gesture/streams", s.handleGestureStreamCreate)
		s.mux.HandleFunc("GET /v1/gesture/streams/{id}", s.handleGestureStreamInfo)
		s.mux.HandleFunc("POST /v1/gesture/streams/{id}/frames", s.instrument(&s.statFeed, s.handleGestureFeed))
		s.mux.HandleFunc("DELETE /v1/gesture/streams/{id}", s.handleGestureStreamDelete)
	}
	s.mux.HandleFunc("GET /v1/graph", s.handleGraphIndex)
	s.mux.HandleFunc("POST /v1/graph/recognize", s.instrument(&s.statGraph, s.handleGraphRecognize))
	s.mux.HandleFunc("POST /v1/graph/ledring", s.instrument(&s.statGraph, s.handleGraphLedring))
	s.mux.HandleFunc("POST /v1/graph/imu", s.instrument(&s.statGraph, s.handleGraphIMU))
	s.mux.HandleFunc("POST /v1/graph/flight", s.instrument(&s.statGraph, s.handleGraphFlight))
	if s.opts.Gesture != nil {
		s.mux.HandleFunc("POST /v1/graph/gesture", s.instrument(&s.statGraph, s.handleGraphGesture))
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /livez", s.handleLivez)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	s.mux.HandleFunc("GET /tracez", s.handleTracez)
	if s.opts.DebugFailpoints {
		s.mux.HandleFunc("GET /failpointz", s.handleFailpointz)
		s.mux.HandleFunc("POST /failpointz", s.handleFailpointz)
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Drain flips the server into draining: /healthz answers 503 (so load
// balancers stop routing here) and new recognition work is refused, while
// requests already executing finish normally. The full graceful-shutdown
// order for a process is: Drain → http.Server.Shutdown (waits for in-flight
// requests) → Close (ends sessions) → core.System.Close (stops the pool).
func (s *Server) Drain() { s.draining.Store(true) }

// Close ends the stream sessions, stops the idle reaper and drains the
// served graphs. In-flight session requests finish first; it does not close
// the underlying system.
func (s *Server) Close() {
	s.sessions.close()
	s.closeGraphs()
}

// errDraining is returned to requests refused because the server is
// draining or its pool has shut down.
var errDraining = errors.New("server: draining")

// acceptingWork reports whether new recognition work may start.
func (s *Server) acceptingWork() bool {
	if s.draining.Load() {
		return false
	}
	if st, started := s.sys.PoolStats(); started && st.Closed {
		return false
	}
	return true
}

// instrument wraps a work handler with the endpoint's latency/volume
// accounting. The handler returns how many frames it carried and whether it
// failed.
func (s *Server) instrument(st *endpointStats, h func(http.ResponseWriter, *http.Request) (frames int, failed bool)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := s.opts.now()
		frames, failed := h(w, r)
		st.record(s.opts.now().Sub(t0), frames, failed)
	}
}

// handleRecognize answers POST /v1/recognize: one frame in, one verdict out.
func (s *Server) handleRecognize(w http.ResponseWriter, r *http.Request) (int, bool) {
	return s.recognizeFrames(w, r, 1, true)
}

// handleBatch answers POST /v1/batch: an ordered batch through the shared
// pool, one result slot per frame in input order.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) (int, bool) {
	return s.recognizeFrames(w, r, s.opts.MaxBatch, false)
}

// recognizeFrames is the shared body of /v1/recognize and /v1/batch: decode,
// admission, deadline, then either the full pool path or — under overload or
// a read-only store — the degraded stage-0 path on the request goroutine.
func (s *Server) recognizeFrames(w http.ResponseWriter, r *http.Request, maxBatch int, single bool) (int, bool) {
	if !s.acceptingWork() {
		writeError(w, http.StatusServiceUnavailable, errDraining)
		return 0, true
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	frames, err := decodeFrames(r, &s.framePool, maxBatch, single)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return 0, true
	}
	ctx, cancel, err := requestContext(r)
	if err != nil {
		releaseFrames(&s.framePool, frames)
		writeError(w, http.StatusBadRequest, err)
		return 0, true
	}
	defer cancel()
	n := len(frames)
	if !s.admit(n) {
		releaseFrames(&s.framePool, frames)
		writeOverloaded(w)
		return 0, true
	}
	defer s.unadmit(n)

	var results []FrameResult
	if s.shouldDegrade() {
		results = s.recognizeDegraded(frames)
	} else {
		res, errs, err := s.sys.RecognizeBatchContext(ctx, frames, s.framePool.Put)
		if err != nil {
			// Top-level refusal: no frame was consumed, so they are still ours.
			releaseFrames(&s.framePool, frames)
			writeError(w, http.StatusServiceUnavailable, errDraining)
			return n, true
		}
		results = make([]FrameResult, n)
		for i := range results {
			results[i] = resultToWire(res[i], errs[i])
		}
	}
	if single {
		writeJSON(w, http.StatusOK, results[0])
		return 1, false
	}
	writeJSON(w, http.StatusOK, batchResponse{Results: results})
	return n, false
}

// handleStreamCreate answers POST /v1/streams: opens an ordered session on
// the shared pool.
func (s *Server) handleStreamCreate(w http.ResponseWriter, r *http.Request) {
	if !s.acceptingWork() {
		writeError(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	if err := failpoint.Inject(failpoint.ServerSession); err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	st, err := s.sys.NewStream()
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	// Results dropped on the abandon path (a reaped session) carry pooled
	// frames; recycle them instead of leaking a window per reap.
	st.SetDropHook(s.framePool.Put)
	stats, _ := s.sys.PoolStats()
	sess := s.sessions.add(st, stats.StreamWindow)
	writeJSON(w, http.StatusCreated, streamInfo{ID: sess.id, Window: sess.window})
}

// getRecognitionSession looks up a recognition-stream session. Gesture
// sessions share the table and the ID namespace but have no pipeline
// stream (sess.st is nil), so a cross-kind ID must 404 here exactly like
// an unknown one — not reach a nil dereference.
func (s *Server) getRecognitionSession(id string) (*session, bool) {
	sess, ok := s.sessions.get(id)
	if !ok || sess.st == nil {
		return nil, false
	}
	return sess, true
}

// handleStreamInfo answers GET /v1/streams/{id}.
func (s *Server) handleStreamInfo(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.getRecognitionSession(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("server: unknown stream"))
		return
	}
	writeJSON(w, http.StatusOK, streamInfo{
		ID: sess.id, Window: sess.window, Submitted: sess.submitted.Load(),
	})
}

// handleStreamDelete answers DELETE /v1/streams/{id}: graceful session end.
func (s *Server) handleStreamDelete(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.getRecognitionSession(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("server: unknown stream"))
		return
	}
	sess.mu.Lock() // waits for an in-flight frames request to finish
	if !sess.closed {
		sess.closed = true
		sess.st.Close()
		s.sessions.remove(sess.id)
	}
	sess.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// handleStreamFrames answers POST /v1/streams/{id}/frames: the request's
// frames enter the session's stream in order and the response carries their
// results, still in order. Requests on one session are serialised; the
// stream's in-flight window applies back-pressure by blocking Submit (and
// therefore the request) rather than buffering unboundedly. A DeadlineHeader
// budget bounds that blocking: when it expires the session is sacrificed
// (ordered streams cannot skip frames, so the only way to honour the
// deadline is to abandon the stream) and the response's unfinished tail is
// marked "deadline".
func (s *Server) handleStreamFrames(w http.ResponseWriter, r *http.Request) (int, bool) {
	sess, ok := s.getRecognitionSession(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("server: unknown stream"))
		return 0, true
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	frames, err := decodeFrames(r, &s.framePool, s.opts.MaxBatch, false)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return 0, true
	}
	ctx, cancel, err := requestContext(r)
	if err != nil {
		releaseFrames(&s.framePool, frames)
		writeError(w, http.StatusBadRequest, err)
		return 0, true
	}
	defer cancel()
	if !s.admit(len(frames)) {
		releaseFrames(&s.framePool, frames)
		writeOverloaded(w)
		return 0, true
	}
	defer s.unadmit(len(frames))

	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.closed {
		releaseFrames(&s.framePool, frames)
		writeError(w, http.StatusGone, errors.New("server: stream closed"))
		return 0, true
	}
	sess.touch(s.opts.now())
	defer func() { sess.touch(s.opts.now()) }()

	// Submit and collect concurrently, like pipeline.RecognizeBatch: a batch
	// larger than the stream window would otherwise deadlock against the
	// back-pressure it is supposed to exercise. claimed counts the frames
	// whose results WILL be delivered: a Submit that failed after claiming
	// its sequence number (pool closed under us) still delivers an error
	// result, a Submit refused outright does not.
	claimedCh := make(chan int, 1)
	go func() {
		claimed := 0
		for _, f := range frames {
			ok, err := sess.st.SubmitContext(ctx, f)
			if ok {
				claimed++
			}
			if err != nil {
				break
			}
		}
		claimedCh <- claimed
	}()

	out := batchResponse{Results: make([]FrameResult, len(frames))}
	results := sess.st.Results()
	collected := 0
	claimed := -1
	expired := false
	pending := claimedCh
collect:
	for claimed < 0 || collected < claimed {
		select {
		case res, ok := <-results:
			if !ok {
				// The channel closes only after every claimed result has
				// been delivered (and we have consumed the buffer), so the
				// pool shut down under us and collected == claimed.
				break collect
			}
			out.Results[collected] = resultToWire(res.Res, res.Err)
			s.framePool.Put(res.Frame)
			collected++
		case c := <-pending:
			claimed = c
			pending = nil // the goroutine sends exactly once
		case <-ctx.Done():
			// Deadline mid-collect: sacrifice the session. Abandon routes the
			// claimed-but-undelivered frames to the drop hook (which recycles
			// them) and unblocks the submit goroutine's window waits.
			expired = true
			sess.closed = true
			sess.st.Abandon()
			s.sessions.remove(sess.id)
			break collect
		}
	}
	if claimed < 0 {
		claimed = <-claimedCh
	}
	// Frames past claimed never entered the stream; answer them and recycle
	// their buffers ourselves. Claimed-but-undelivered frames (possible only
	// if the stream was abandoned under us) belong to the stream's drop hook
	// — recycling them here too would double-free.
	tailErr := ErrValueDraining
	if expired {
		tailErr = ErrValueDeadline
	}
	for i := collected; i < len(frames); i++ {
		out.Results[i] = FrameResult{Err: tailErr}
		if i >= claimed {
			s.framePool.Put(frames[i])
		}
	}
	sess.submitted.Add(uint64(claimed))
	// Partial results are still results: the response is 200 with the
	// undeliverable tail marked, so an operator mid-stream can tell exactly
	// which frames made it.
	writeJSON(w, http.StatusOK, out)
	return len(frames), collected < len(frames)
}

// handleHealthz answers GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	stats, started := s.sys.PoolStats()
	if s.draining.Load() || (started && stats.Closed) {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleStatsz answers GET /statsz.
func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	pool, started := s.sys.PoolStats()
	gets, puts := s.framePool.Stats()
	resp := StatsResponse{
		UptimeS:  s.opts.now().Sub(s.started).Seconds(),
		Draining: s.draining.Load(),
		Admission: AdmissionSnapshot{
			InflightFrames:    s.inflight.Load(),
			MaxInflightFrames: s.opts.MaxInflightFrames,
			Rejected:          s.rejected.Load(),
			DegradedFrames:    s.degraded.Load(),
			Overloaded:        s.overloaded(),
			StoreReadOnly:     s.storeReadOnly(),
		},
		Pool: PoolSnapshot{
			Started:        started,
			Closed:         pool.Closed,
			Workers:        pool.Workers,
			QueueLen:       pool.QueueLen,
			QueueCap:       pool.QueueCap,
			Streams:        pool.Streams,
			IngestAccepted: pool.IngestAccepted,
			IngestDropped:  pool.IngestDropped,
			Attached:       pool.Attached,
			Owners:         ownerSnapshots(pool.Owners),
		},
		FramePool: FramePoolSnapshot{Gets: gets, Puts: puts},
		Sessions:  s.sessions.snapshot(),
		Endpoints: map[string]EndpointSnapshot{
			"recognize":     s.statRecognize.snapshot(),
			"batch":         s.statBatch.snapshot(),
			"stream_frames": s.statStream.snapshot(),
			"graph":         s.statGraph.snapshot(),
		},
		Graphs: s.graphStats(),
		Mem:    memSnapshot(),
	}
	if s.opts.Store != nil {
		st := s.opts.Store.Stats()
		resp.Store = &st
	}
	if s.opts.Gesture != nil {
		resp.Endpoints["gesture"] = s.statGesture.snapshot()
		resp.Endpoints["gesture_feed"] = s.statFeed.snapshot()
	}
	writeJSON(w, http.StatusOK, resp)
}
