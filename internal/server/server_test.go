package server_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hdc/internal/body"
	"hdc/internal/core"
	"hdc/internal/pipeline"
	"hdc/internal/raster"
	"hdc/internal/scene"
	"hdc/internal/server"
	"hdc/internal/server/client"
)

// testService spins up a system + service + HTTP listener. The returned
// cleanup tears all three down in drain order.
func testService(t testing.TB, opts server.Options, pipeCfg pipeline.Config) (*core.System, *server.Server, *httptest.Server) {
	t.Helper()
	sys, err := core.NewSystem(
		core.WithSceneConfig(scene.Config{Width: 128, Height: 128}),
		core.WithPipelineConfig(pipeCfg),
	)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(sys, opts)
	hs := httptest.NewServer(srv)
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
		sys.Close()
	})
	return sys, srv, hs
}

// signFrames renders one frame per sign in the given sequence. The signs are
// recognisable at the reference view, so result labels must echo the
// submission order — the ordering oracle of the concurrency tests.
func signFrames(t testing.TB, sys *core.System, signs []body.Sign) []*raster.Gray {
	t.Helper()
	frames := make([]*raster.Gray, len(signs))
	for i, s := range signs {
		f, err := sys.Rend.Render(s, scene.ReferenceView(), body.Options{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		frames[i] = f
	}
	return frames
}

// signPattern builds a deterministic per-operator sign sequence.
func signPattern(operator, n int) []body.Sign {
	all := body.AllSigns()
	signs := make([]body.Sign, n)
	for i := range signs {
		signs[i] = all[(operator+i)%len(all)]
	}
	return signs
}

// checkOrdered asserts the results echo the sign sequence, slot for slot.
func checkOrdered(t *testing.T, tag string, signs []body.Sign, results []server.FrameResult) {
	t.Helper()
	if len(results) != len(signs) {
		t.Fatalf("%s: %d results for %d frames", tag, len(results), len(signs))
	}
	for i, r := range results {
		if !r.OK || r.Sign != signs[i].String() {
			t.Fatalf("%s: slot %d: got ok=%v sign=%q err=%q, want %q",
				tag, i, r.OK, r.Sign, r.Err, signs[i])
		}
	}
}

// TestRecognizeSingleFrame drives POST /v1/recognize over all three wire
// encodings.
func TestRecognizeSingleFrame(t *testing.T) {
	sys, _, hs := testService(t, server.Options{}, pipeline.Config{Workers: 2})
	frame := signFrames(t, sys, []body.Sign{body.SignNo})[0]

	for _, mode := range []string{"raw", "json"} {
		c := client.New(hs.URL, nil)
		c.JSONWire = mode == "json"
		res, err := c.Recognize(context.Background(), frame)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if !res.OK || res.Sign != "No" {
			t.Fatalf("%s: got %+v, want No", mode, res)
		}
		if res.Confidence <= 0 || res.LatencyNS <= 0 {
			t.Fatalf("%s: missing diagnostics: %+v", mode, res)
		}
	}
}

// TestBatchOrdering pins input-order results on /v1/batch.
func TestBatchOrdering(t *testing.T) {
	sys, _, hs := testService(t, server.Options{}, pipeline.Config{Workers: 4})
	signs := signPattern(0, 12)
	frames := signFrames(t, sys, signs)
	c := client.New(hs.URL, nil)
	results, err := c.RecognizeBatch(context.Background(), frames)
	if err != nil {
		t.Fatal(err)
	}
	checkOrdered(t, "batch", signs, results)
}

// TestManyOperatorsSharedPool is the acceptance-criterion test: 12
// concurrent operators — batch and stream traffic mixed — share one pool,
// and every stream sees its own results strictly in submission order.
func TestManyOperatorsSharedPool(t *testing.T) {
	sys, _, hs := testService(t, server.Options{}, pipeline.Config{Workers: 4})

	const operators = 12 // ≥8 required; half stream, half batch
	const perOp = 9      // frames per operator, 3 requests of 3 on streams

	// Render per-operator frame sets up front so operator goroutines only
	// exercise the service (render is not what we are testing).
	patterns := make([][]body.Sign, operators)
	frames := make([][]*raster.Gray, operators)
	for op := 0; op < operators; op++ {
		patterns[op] = signPattern(op, perOp)
		frames[op] = signFrames(t, sys, patterns[op])
	}

	var wg sync.WaitGroup
	errCh := make(chan error, operators)
	for op := 0; op < operators; op++ {
		op := op
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			c := client.New(hs.URL, nil)
			c.JSONWire = op%4 == 1 // mix wire encodings too
			if op%2 == 0 {
				// Stream operator: three ordered submissions on one session.
				st, err := c.OpenStream(ctx)
				if err != nil {
					errCh <- fmt.Errorf("op %d: open: %w", op, err)
					return
				}
				var all []server.FrameResult
				for i := 0; i < perOp; i += 3 {
					rs, err := st.Submit(ctx, frames[op][i:i+3]...)
					if err != nil {
						errCh <- fmt.Errorf("op %d: submit: %w", op, err)
						return
					}
					all = append(all, rs...)
				}
				if err := st.Close(ctx); err != nil {
					errCh <- fmt.Errorf("op %d: close: %w", op, err)
					return
				}
				for i, r := range all {
					if !r.OK || r.Sign != patterns[op][i].String() {
						errCh <- fmt.Errorf("op %d: stream slot %d: got %q want %q (err=%q)",
							op, i, r.Sign, patterns[op][i], r.Err)
						return
					}
				}
			} else {
				// Batch operator: whole set in one request.
				rs, err := c.RecognizeBatch(ctx, frames[op])
				if err != nil {
					errCh <- fmt.Errorf("op %d: batch: %w", op, err)
					return
				}
				for i, r := range rs {
					if !r.OK || r.Sign != patterns[op][i].String() {
						errCh <- fmt.Errorf("op %d: batch slot %d: got %q want %q (err=%q)",
							op, i, r.Sign, patterns[op][i], r.Err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// The shared pool served everyone: statsz shows the traffic.
	stats, err := client.New(hs.URL, nil).Statsz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Pool.Started || stats.Pool.Workers != 4 {
		t.Fatalf("pool snapshot: %+v", stats.Pool)
	}
	wantFrames := uint64(operators / 2 * perOp)
	if got := stats.Endpoints["batch"].Frames; got != wantFrames {
		t.Errorf("batch frames: got %d, want %d", got, wantFrames)
	}
	if got := stats.Endpoints["stream_frames"].Frames; got != wantFrames {
		t.Errorf("stream frames: got %d, want %d", got, wantFrames)
	}
	if stats.Sessions.Created != uint64(operators/2) {
		t.Errorf("sessions created: got %d, want %d", stats.Sessions.Created, operators/2)
	}
}

// TestGracefulDrain closes the system while batch and stream requests are in
// flight: every request must come back clean — full results, a
// draining-marked tail, or a 503 — and the server must not panic or hang.
func TestGracefulDrain(t *testing.T) {
	sys, srv, hs := testService(t, server.Options{}, pipeline.Config{Workers: 2})

	const operators = 8
	signs := signPattern(0, 6)
	frameSets := make([][]*raster.Gray, operators)
	for op := range frameSets {
		frameSets[op] = signFrames(t, sys, signs)
	}

	start := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, operators*4)
	for op := 0; op < operators; op++ {
		op := op
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			ctx := context.Background()
			c := client.New(hs.URL, nil)
			for round := 0; ; round++ {
				var err error
				if op%2 == 0 {
					_, err = c.RecognizeBatch(ctx, frameSets[op])
				} else {
					var st *client.Stream
					st, err = c.OpenStream(ctx)
					if err == nil {
						_, err = st.Submit(ctx, frameSets[op]...)
					}
				}
				if err != nil {
					// The only acceptable failure is the drain signal.
					if !errors.Is(err, client.ErrDraining) {
						errCh <- fmt.Errorf("op %d round %d: %v", op, round, err)
					}
					return
				}
			}
		}()
	}
	close(start)
	time.Sleep(50 * time.Millisecond) // let requests pile onto the pool
	srv.Drain()
	sys.Close() // drain mid-flight: the satellite fix under test
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// After the drain: healthz flips to 503 and new work is refused.
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after drain: %d, want 503", resp.StatusCode)
	}
	if _, err := client.New(hs.URL, nil).RecognizeBatch(context.Background(), frameSets[0]); !errors.Is(err, client.ErrDraining) {
		t.Fatalf("batch after drain: %v, want draining", err)
	}
}

// TestStreamLifecycle covers session metadata, deletion and the error
// surface for unknown/closed streams.
func TestStreamLifecycle(t *testing.T) {
	sys, _, hs := testService(t, server.Options{}, pipeline.Config{Workers: 2})
	c := client.New(hs.URL, nil)
	ctx := context.Background()

	st, err := c.OpenStream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Window <= 0 {
		t.Fatalf("stream window not reported: %+v", st)
	}
	signs := signPattern(0, 3)
	rs, err := st.Submit(ctx, signFrames(t, sys, signs)...)
	if err != nil {
		t.Fatal(err)
	}
	checkOrdered(t, "stream", signs, rs)

	// Info reflects the submissions.
	resp, err := http.Get(hs.URL + "/v1/streams/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream info: %d", resp.StatusCode)
	}

	if err := st.Close(ctx); err != nil {
		t.Fatal(err)
	}
	// Closed and unknown streams answer 404 (the session is unlinked).
	var apiErr *client.APIError
	_, err = st.Submit(ctx, signFrames(t, sys, signs[:1])...)
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("submit on closed stream: %v, want 404", err)
	}
}

// TestIdleStreamReaped pins the reaper: a session idle past the timeout is
// abandoned and its id answers 404 afterwards.
func TestIdleStreamReaped(t *testing.T) {
	_, _, hs := testService(t,
		server.Options{StreamIdleTimeout: 40 * time.Millisecond},
		pipeline.Config{Workers: 2})
	c := client.New(hs.URL, nil)
	ctx := context.Background()

	st, err := c.OpenStream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(hs.URL + "/v1/streams/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			break // reaped
		}
		if time.Now().After(deadline) {
			t.Fatal("idle stream never reaped")
		}
		time.Sleep(20 * time.Millisecond)
	}
	stats, err := c.Statsz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sessions.Reaped == 0 {
		t.Fatalf("reap not counted: %+v", stats.Sessions)
	}
}

// TestBadRequests covers the wire-validation surface.
func TestBadRequests(t *testing.T) {
	_, _, hs := testService(t, server.Options{MaxBatch: 4}, pipeline.Config{Workers: 1})

	cases := []struct {
		name string
		do   func() (*http.Response, error)
		want int
	}{
		{"bad json", func() (*http.Response, error) {
			return http.Post(hs.URL+"/v1/recognize", "application/json", strReader(`{"width":`))
		}, http.StatusBadRequest},
		{"geometry mismatch", func() (*http.Response, error) {
			return http.Post(hs.URL+"/v1/recognize", "application/json",
				strReader(`{"width":4,"height":4,"pixels":"AAAA"}`))
		}, http.StatusBadRequest},
		{"missing raw headers", func() (*http.Response, error) {
			return http.Post(hs.URL+"/v1/recognize", "application/octet-stream", strReader("xx"))
		}, http.StatusBadRequest},
		{"oversized batch", func() (*http.Response, error) {
			req, _ := http.NewRequest(http.MethodPost, hs.URL+"/v1/batch", strReader("xxxxxxxx"))
			req.Header.Set("Content-Type", "application/octet-stream")
			req.Header.Set("X-Frame-Width", "1")
			req.Header.Set("X-Frame-Height", "1")
			req.Header.Set("X-Frame-Count", "8")
			return http.DefaultClient.Do(req)
		}, http.StatusBadRequest},
		{"unknown stream", func() (*http.Response, error) {
			return http.Post(hs.URL+"/v1/streams/zzz/frames", "application/json", strReader(`{}`))
		}, http.StatusNotFound},
		// w*h for 2^32 × 2^32 wraps to 0 on 64-bit ints; the geometry check
		// must reject it before a worker builds a frame with an empty pixel
		// buffer and panics (process-killing, since workers have no recover).
		{"overflowing raw geometry", func() (*http.Response, error) {
			req, _ := http.NewRequest(http.MethodPost, hs.URL+"/v1/recognize", strReader(""))
			req.Header.Set("Content-Type", "application/octet-stream")
			req.Header.Set("X-Frame-Width", "4294967296")
			req.Header.Set("X-Frame-Height", "4294967296")
			return http.DefaultClient.Do(req)
		}, http.StatusBadRequest},
		{"overflowing json geometry", func() (*http.Response, error) {
			return http.Post(hs.URL+"/v1/recognize", "application/json",
				strReader(`{"width":4294967296,"height":4294967296,"pixels":""}`))
		}, http.StatusBadRequest},
		{"wrapping-negative geometry", func() (*http.Response, error) {
			return http.Post(hs.URL+"/v1/recognize", "application/json",
				strReader(`{"width":3037000500,"height":3037000500,"pixels":""}`))
		}, http.StatusBadRequest},
		{"png bomb header", func() (*http.Response, error) {
			return http.Post(hs.URL+"/v1/recognize", "image/png",
				bytes.NewReader(pngHeader(100000, 100000)))
		}, http.StatusBadRequest},
		{"oversized body", func() (*http.Response, error) {
			return http.Post(hs.URL+"/v1/batch", "application/json",
				bytes.NewReader(make([]byte, 64<<20+1024)))
		}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := tc.do()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: got %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

func strReader(s string) io.Reader { return strings.NewReader(s) }

// pngHeader builds a syntactically valid PNG signature + IHDR declaring the
// given (huge) dimensions — a decompression bomb's first 33 bytes. The
// server must reject it from the header without running the pixel decoder.
func pngHeader(w, h int) []byte {
	ihdr := make([]byte, 13)
	binary.BigEndian.PutUint32(ihdr[0:], uint32(w))
	binary.BigEndian.PutUint32(ihdr[4:], uint32(h))
	ihdr[8] = 8 // bit depth
	ihdr[9] = 0 // grayscale
	out := []byte{0x89, 'P', 'N', 'G', '\r', '\n', 0x1a, '\n'}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(ihdr)))
	out = append(out, lenBuf[:]...)
	chunk := append([]byte("IHDR"), ihdr...)
	out = append(out, chunk...)
	var crcBuf [4]byte
	binary.BigEndian.PutUint32(crcBuf[:], crc32.ChecksumIEEE(chunk))
	return append(out, crcBuf[:]...)
}
