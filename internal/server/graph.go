package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"time"

	"hdc/internal/flight"
	"hdc/internal/geom"
	"hdc/internal/gesture"
	"hdc/internal/graph"
	"hdc/internal/graph/nodes"
	"hdc/internal/imu"
	"hdc/internal/ledring"
	"hdc/internal/recognizer"
)

// graph.go serves the dataflow graph runtime: every in-tree node workload —
// sign recognition, gesture windows, LED-ring protocol decoding, IMU motion
// detection, flight-pattern classification — as a pooled, servable graph on
// the system's one worker pool. Graphs are built lazily on first use and
// live for the server's life; each node attaches its own pipeline.Owner
// ("recognize/classify", "ledring/decode", ...), so /statsz breaks pool
// traffic down per graph node exactly as it does per classic stream owner,
// and frames through the recognition graph show their node hops on /tracez.
//
//	GET  /v1/graph            workloads served + live per-graph stats
//	POST /v1/graph/recognize  frame batch → FrameResults (graph path)
//	POST /v1/graph/gesture    one observation window → gesture verdict
//	POST /v1/graph/ledring    LED-ring observations → decoded readings
//	POST /v1/graph/imu        IMU sample windows → motion readings
//	POST /v1/graph/flight     position trajectories → pattern readings
//
// The non-vision workloads ride on JSON values instead of frame uploads;
// admission control budgets their work items like frames. The recognition
// graph path is pinned byte-identical to /v1/batch's pool path by the
// differential tests (internal/graph/nodes and graph_endpoint_test.go).

// graphWorkloads are the servable topology names in listing order.
var graphWorkloads = []string{"recognize", "gesture", "ledring", "imu", "flight"}

// errUnknownGraph answers a workload name outside graphWorkloads.
var errUnknownGraph = errors.New("server: unknown graph workload")

// getGraph returns the named workload's graph, building it on first use.
// Build attaches per-node owners to the system's pool, so the first graph
// request also starts the pool, exactly like the first stream.
func (s *Server) getGraph(name string) (*graph.Graph, error) {
	s.graphMu.Lock()
	defer s.graphMu.Unlock()
	if s.graphsClosed {
		return nil, errDraining
	}
	if g, ok := s.graphs[name]; ok {
		return g, nil
	}
	var spec graph.Spec
	switch name {
	case "recognize":
		spec = nodes.RecognizeSpec(s.sys.Rec)
	case "gesture":
		spec = nodes.GestureSpec()
	case "ledring":
		spec = nodes.LedringSpec()
	case "imu":
		spec = nodes.IMUSpec()
	case "flight":
		spec = nodes.FlightSpec()
	default:
		return nil, errUnknownGraph
	}
	p, err := s.sys.Pool()
	if err != nil {
		return nil, err
	}
	g, err := graph.Build(spec, p, graph.Config{Recycle: s.framePool.Put})
	if err != nil {
		return nil, err
	}
	if s.graphs == nil {
		s.graphs = make(map[string]*graph.Graph)
	}
	s.graphs[name] = g
	return g, nil
}

// closeGraphs tears the built graphs down gracefully (queued messages
// drain). Called from Server.Close, before the system closes the pool.
func (s *Server) closeGraphs() {
	s.graphMu.Lock()
	graphs := s.graphs
	s.graphs = nil
	s.graphsClosed = true
	s.graphMu.Unlock()
	for _, g := range graphs {
		g.Close()
	}
}

// graphStats snapshots the built graphs, sorted by name.
func (s *Server) graphStats() []graph.Stats {
	s.graphMu.Lock()
	defer s.graphMu.Unlock()
	out := make([]graph.Stats, 0, len(s.graphs))
	for _, g := range s.graphs {
		out = append(out, g.Stats())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// graphIndexResponse is the JSON body of GET /v1/graph.
type graphIndexResponse struct {
	// Workloads lists every servable topology (gesture only when enabled).
	Workloads []string `json:"workloads"`
	// Graphs carries live stats for the topologies built so far.
	Graphs []graph.Stats `json:"graphs"`
}

// handleGraphIndex answers GET /v1/graph.
func (s *Server) handleGraphIndex(w http.ResponseWriter, r *http.Request) {
	names := make([]string, 0, len(graphWorkloads))
	for _, n := range graphWorkloads {
		if n == "gesture" && s.opts.Gesture == nil {
			continue
		}
		names = append(names, n)
	}
	writeJSON(w, http.StatusOK, graphIndexResponse{Workloads: names, Graphs: s.graphStats()})
}

// runGraphValues is the shared body of the value-workload endpoints:
// admission, deadline, then one Process batch through the named graph.
func (s *Server) runGraphValues(w http.ResponseWriter, r *http.Request, name string, vals []any) ([]graph.Output, bool) {
	if !s.acceptingWork() {
		writeError(w, http.StatusServiceUnavailable, errDraining)
		return nil, false
	}
	if len(vals) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("server: empty %s batch", name))
		return nil, false
	}
	if len(vals) > s.opts.MaxBatch {
		writeError(w, http.StatusBadRequest, fmt.Errorf("server: %s batch of %d exceeds limit %d", name, len(vals), s.opts.MaxBatch))
		return nil, false
	}
	ctx, cancel, err := requestContext(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return nil, false
	}
	defer cancel()
	if !s.admit(len(vals)) {
		writeOverloaded(w)
		return nil, false
	}
	defer s.unadmit(len(vals))
	g, err := s.getGraph(name)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return nil, false
	}
	in := make([]graph.Input, len(vals))
	for i, v := range vals {
		in[i] = graph.Input{Value: v}
	}
	out, err := g.Process(ctx, in)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return nil, false
	}
	return out, true
}

// graphErrValue maps a graph slot error to its wire string.
func graphErrValue(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return ErrValueDeadline
	case errors.Is(err, graph.ErrClosed):
		return ErrValueDraining
	default:
		return err.Error()
	}
}

// handleGraphRecognize answers POST /v1/graph/recognize: a frame batch in
// any of the wire encodings through the recognition graph — the same
// verdicts as /v1/batch, served by the graph runtime.
func (s *Server) handleGraphRecognize(w http.ResponseWriter, r *http.Request) (int, bool) {
	if !s.acceptingWork() {
		writeError(w, http.StatusServiceUnavailable, errDraining)
		return 0, true
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	frames, err := decodeFrames(r, &s.framePool, s.opts.MaxBatch, false)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return 0, true
	}
	ctx, cancel, err := requestContext(r)
	if err != nil {
		releaseFrames(&s.framePool, frames)
		writeError(w, http.StatusBadRequest, err)
		return 0, true
	}
	defer cancel()
	n := len(frames)
	if !s.admit(n) {
		releaseFrames(&s.framePool, frames)
		writeOverloaded(w)
		return 0, true
	}
	defer s.unadmit(n)
	g, err := s.getGraph("recognize")
	if err != nil {
		releaseFrames(&s.framePool, frames)
		writeError(w, http.StatusServiceUnavailable, err)
		return n, true
	}
	in := make([]graph.Input, n)
	for i, f := range frames {
		in[i] = graph.Input{Frame: f}
	}
	// Process owns the frames from here: every one recycles through the
	// graph's Recycle hook (the server frame pool) exactly once.
	out, err := g.Process(ctx, in)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return n, true
	}
	results := make([]FrameResult, n)
	for i, o := range out {
		res, _ := o.Value.(recognizer.Result)
		results[i] = resultToWire(res, o.Err)
		if o.Err != nil && o.Value == nil {
			// The message never reached the classify node (abandoned or
			// refused): no diagnostic Result exists, only the error.
			results[i] = FrameResult{Err: graphErrValue(o.Err)}
		}
	}
	writeJSON(w, http.StatusOK, batchResponse{Results: results})
	return n, false
}

// handleGraphGesture answers POST /v1/graph/gesture: one observation window
// through the gesture graph, classified at collection — the graph
// counterpart of /v1/gesture, pinned to the same verdicts.
func (s *Server) handleGraphGesture(w http.ResponseWriter, r *http.Request) (int, bool) {
	if !s.acceptingWork() {
		writeError(w, http.StatusServiceUnavailable, errDraining)
		return 0, true
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	frames, err := decodeFrames(r, &s.framePool, s.opts.MaxBatch, false)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return 0, true
	}
	ctx, cancel, err := requestContext(r)
	if err != nil {
		releaseFrames(&s.framePool, frames)
		writeError(w, http.StatusBadRequest, err)
		return 0, true
	}
	defer cancel()
	if !s.admit(len(frames)) {
		releaseFrames(&s.framePool, frames)
		writeOverloaded(w)
		return 0, true
	}
	defer s.unadmit(len(frames))
	g, err := s.getGraph("gesture")
	if err != nil {
		releaseFrames(&s.framePool, frames)
		writeError(w, http.StatusServiceUnavailable, err)
		return len(frames), true
	}
	// ClassifyGestureWindow owns the frames: accepted ones recycle through
	// the graph's hook, refused ones (short window) through onFrame.
	m, err := nodes.ClassifyGestureWindow(ctx, g, s.opts.Gesture, frames, s.framePool.Put)
	if errors.Is(err, gesture.ErrShortWindow) {
		writeError(w, http.StatusBadRequest, err)
		return len(frames), true
	}
	out := gestureMatchToWire(m, err)
	failed := err != nil && !errors.Is(err, gesture.ErrNoGesture)
	writeJSON(w, http.StatusOK, out)
	return len(frames), failed
}

// ledringRing is one LED-ring observation on the wire: successive
// whole-ring frames, each LED a Color ordinal (0 off, 1 red, 2 green,
// 3 white).
type ledringRing struct {
	Frames [][]int `json:"frames"`
}

// graphLedringRequest is the JSON body of POST /v1/graph/ledring.
type graphLedringRequest struct {
	Rings []ledringRing `json:"rings"`
}

// LedringResult is one decoded ring on the wire. Field errors are per
// channel — a danger ring legitimately has no heading boundary.
type LedringResult struct {
	HeadingDeg  float64 `json:"heading_deg"`
	HeadingErr  string  `json:"heading_error,omitempty"`
	QuantErrDeg float64 `json:"quant_err_deg"`
	Danger      bool    `json:"danger"`
	Pulse       string  `json:"pulse"`
	PulseErr    string  `json:"pulse_error,omitempty"`
	// Err is the whole-observation failure (empty input, shed, drain).
	Err string `json:"error,omitempty"`
}

// handleGraphLedring answers POST /v1/graph/ledring.
func (s *Server) handleGraphLedring(w http.ResponseWriter, r *http.Request) (int, bool) {
	var req graphLedringRequest
	if err := decodeJSONBody(w, r, s.opts.MaxBodyBytes, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return 0, true
	}
	vals := make([]any, len(req.Rings))
	for i, ring := range req.Rings {
		frames := make([][]ledring.Color, len(ring.Frames))
		for j, f := range ring.Frames {
			leds := make([]ledring.Color, len(f))
			for k, c := range f {
				leds[k] = ledring.Color(c)
			}
			frames[j] = leds
		}
		vals[i] = nodes.LedringInput{Frames: frames}
	}
	out, ok := s.runGraphValues(w, r, "ledring", vals)
	if !ok {
		return len(vals), true
	}
	results := make([]LedringResult, len(out))
	failed := false
	for i, o := range out {
		if rd, k := o.Value.(*nodes.LedringReading); k && o.Err == nil {
			results[i] = LedringResult{
				HeadingDeg:  rd.Heading.Deg(),
				HeadingErr:  rd.HeadingErr,
				QuantErrDeg: rd.QuantErrDeg,
				Danger:      rd.Danger,
				Pulse:       rd.Pulse.String(),
				PulseErr:    rd.PulseErr,
			}
			continue
		}
		results[i] = LedringResult{Err: graphErrValue(o.Err)}
		failed = true
	}
	writeJSON(w, http.StatusOK, struct {
		Results []LedringResult `json:"results"`
	}{results})
	return len(vals), failed
}

// imuSample is one IMU sample on the wire.
type imuSample struct {
	TS       float64    `json:"t_s"`
	Accel    [3]float64 `json:"accel"`
	GyroZ    float64    `json:"gyro_z"`
	BaroAltM float64    `json:"baro_alt_m"`
}

// graphIMURequest is the JSON body of POST /v1/graph/imu.
type graphIMURequest struct {
	Windows [][]imuSample `json:"windows"`
}

// IMUResult is one window's motion reading on the wire.
type IMUResult struct {
	State       string `json:"state"`
	Transitions int    `json:"transitions"`
	Samples     int    `json:"samples"`
	Err         string `json:"error,omitempty"`
}

// handleGraphIMU answers POST /v1/graph/imu.
func (s *Server) handleGraphIMU(w http.ResponseWriter, r *http.Request) (int, bool) {
	var req graphIMURequest
	if err := decodeJSONBody(w, r, s.opts.MaxBodyBytes, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return 0, true
	}
	vals := make([]any, len(req.Windows))
	for i, win := range req.Windows {
		samples := make(nodes.IMUWindow, len(win))
		for j, sm := range win {
			samples[j] = imu.Sample{
				T:        secondsToDuration(sm.TS),
				Accel:    geom.V3(sm.Accel[0], sm.Accel[1], sm.Accel[2]),
				GyroZ:    sm.GyroZ,
				BaroAltM: sm.BaroAltM,
			}
		}
		vals[i] = samples
	}
	out, ok := s.runGraphValues(w, r, "imu", vals)
	if !ok {
		return len(vals), true
	}
	results := make([]IMUResult, len(out))
	failed := false
	for i, o := range out {
		if rd, k := o.Value.(nodes.IMUReading); k && o.Err == nil {
			results[i] = IMUResult{State: rd.FinalLabel, Transitions: rd.Transitions, Samples: rd.Samples}
			continue
		}
		results[i] = IMUResult{Err: graphErrValue(o.Err)}
		failed = true
	}
	writeJSON(w, http.StatusOK, struct {
		Results []IMUResult `json:"results"`
	}{results})
	return len(vals), failed
}

// flightSample is one trajectory sample on the wire.
type flightSample struct {
	TS         float64    `json:"t_s"`
	Pos        [3]float64 `json:"pos"`
	HeadingDeg float64    `json:"heading_deg"`
}

// graphFlightRequest is the JSON body of POST /v1/graph/flight.
type graphFlightRequest struct {
	Trajectories [][]flightSample `json:"trajectories"`
}

// FlightResult is one trajectory's classified pattern on the wire.
type FlightResult struct {
	Pattern string `json:"pattern,omitempty"`
	Err     string `json:"error,omitempty"`
}

// handleGraphFlight answers POST /v1/graph/flight.
func (s *Server) handleGraphFlight(w http.ResponseWriter, r *http.Request) (int, bool) {
	var req graphFlightRequest
	if err := decodeJSONBody(w, r, s.opts.MaxBodyBytes, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return 0, true
	}
	vals := make([]any, len(req.Trajectories))
	for i, tr := range req.Trajectories {
		samples := make(flight.Trajectory, len(tr))
		for j, sm := range tr {
			samples[j] = flight.Sample{
				T:       sm.TS,
				Pos:     geom.V3(sm.Pos[0], sm.Pos[1], sm.Pos[2]),
				Heading: geom.NewHeading(sm.HeadingDeg * math.Pi / 180),
			}
		}
		vals[i] = samples
	}
	out, ok := s.runGraphValues(w, r, "flight", vals)
	if !ok {
		return len(vals), true
	}
	results := make([]FlightResult, len(out))
	failed := false
	for i, o := range out {
		if rd, k := o.Value.(nodes.FlightReading); k && o.Err == nil {
			results[i] = FlightResult{Pattern: rd.Label}
			continue
		}
		results[i] = FlightResult{Err: graphErrValue(o.Err)}
		failed = true
	}
	writeJSON(w, http.StatusOK, struct {
		Results []FlightResult `json:"results"`
	}{results})
	return len(vals), failed
}

// decodeJSONBody reads one bounded JSON request body into v.
func decodeJSONBody(w http.ResponseWriter, r *http.Request, maxBytes int64, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// secondsToDuration converts a wire t_s to the IMU sample clock.
func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
