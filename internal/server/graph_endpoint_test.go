package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"hdc/internal/gesture"
	"hdc/internal/imu"
	"hdc/internal/ledring"
	"hdc/internal/pipeline"
	"hdc/internal/raster"
	"hdc/internal/server"
	"hdc/internal/server/client"
)

// graph_endpoint_test.go covers the /v1/graph family: the recognition graph
// endpoint is pinned result-identical to /v1/batch (the CI differential for
// the served path), the value workloads answer against direct package
// calls, and the graph registry shows up on /v1/graph and /statsz.

// postGraphJSON posts one JSON body and decodes the response into out,
// failing on a non-200.
func postGraphJSON(t *testing.T, url string, body any, out any) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("POST %s: %d (%s)", url, resp.StatusCode, e.Error)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// wireFrames converts rendered frames to the JSON wire form.
func wireFrames(frames []*raster.Gray) []server.Frame {
	out := make([]server.Frame, len(frames))
	for i, f := range frames {
		out[i] = server.FrameFromRaster(f)
	}
	return out
}

// TestGraphRecognizeMatchesBatch is the served-path differential: the same
// frames through /v1/batch (the legacy pool path) and /v1/graph/recognize
// (the graph runtime) must answer identically in every wire field except
// per-frame latency — including the no_sign slot for a blank frame.
func TestGraphRecognizeMatchesBatch(t *testing.T) {
	sys, _, hs := testService(t, server.Options{}, pipeline.Config{Workers: 4})
	signs := signPattern(0, 9)
	frames := signFrames(t, sys, signs)
	blank, err := raster.NewGray(128, 128)
	if err != nil {
		t.Fatal(err)
	}
	frames = append(frames, blank)

	c := client.New(hs.URL, nil)
	want, err := c.RecognizeBatch(context.Background(), frames)
	if err != nil {
		t.Fatal(err)
	}

	var got struct {
		Results []server.FrameResult `json:"results"`
	}
	postGraphJSON(t, hs.URL+"/v1/graph/recognize",
		map[string]any{"frames": wireFrames(frames)}, &got)

	if len(got.Results) != len(want) {
		t.Fatalf("graph answered %d slots for %d frames", len(got.Results), len(want))
	}
	for i := range want {
		a, b := want[i], got.Results[i]
		a.LatencyNS, b.LatencyNS = 0, 0
		if a != b {
			t.Fatalf("slot %d diverges:\nbatch: %+v\ngraph: %+v", i, want[i], got.Results[i])
		}
	}
	// The blank frame must error on both paths — the comparison above
	// already pinned the two equal; this guards the fixture itself staying
	// meaningful (an error slot really is exercised by the differential).
	if last := got.Results[len(frames)-1]; last.OK || last.Err == "" {
		t.Fatalf("blank slot answered without error: %+v", last)
	}
}

// TestGraphGestureMatchesLegacyEndpoint pins /v1/graph/gesture to
// /v1/gesture: one rendered observation window, two endpoints, identical
// wire verdicts.
func TestGraphGestureMatchesLegacyEndpoint(t *testing.T) {
	sys, hs := gestureService(t, server.Options{}, pipeline.Config{Workers: 4})
	frames := gestureWindow(t, sys, gesture.GestureWave, 0, 24)
	req := map[string]any{"frames": wireFrames(frames)}

	var want, got server.GestureResult
	postGraphJSON(t, hs.URL+"/v1/gesture", req, &want)
	postGraphJSON(t, hs.URL+"/v1/graph/gesture", req, &got)
	if want != got {
		t.Fatalf("gesture verdicts diverge:\nlegacy: %+v\ngraph:  %+v", want, got)
	}
	if !want.OK || want.Gesture != gesture.GestureWave.String() {
		t.Fatalf("fixture window did not classify: %+v", want)
	}
}

// TestGraphLedringEndpoint decodes a navigation ring, a danger ring and a
// take-off pulse through POST /v1/graph/ledring.
func TestGraphLedringEndpoint(t *testing.T) {
	_, _, hs := testService(t, server.Options{}, pipeline.Config{Workers: 2})

	nav := make([]int, 12)
	nav[2] = int(ledring.Red)
	nav[3] = int(ledring.Green)
	wantHeading, err := ledring.DecodeHeading([]ledring.Color{
		ledring.Off, ledring.Off, ledring.Red, ledring.Green,
		ledring.Off, ledring.Off, ledring.Off, ledring.Off,
		ledring.Off, ledring.Off, ledring.Off, ledring.Off,
	})
	if err != nil {
		t.Fatal(err)
	}
	danger := make([]int, 8)
	for i := range danger {
		danger[i] = int(ledring.Red)
	}
	green, white := make([]int, 8), make([]int, 8)
	for i := range green {
		green[i], white[i] = int(ledring.Green), int(ledring.White)
	}

	var got struct {
		Results []server.LedringResult `json:"results"`
	}
	postGraphJSON(t, hs.URL+"/v1/graph/ledring", map[string]any{
		"rings": []map[string]any{
			{"frames": [][]int{nav}},
			{"frames": [][]int{danger}},
			{"frames": [][]int{green, white}},
		},
	}, &got)
	if len(got.Results) != 3 {
		t.Fatalf("%d results for 3 rings", len(got.Results))
	}
	if r := got.Results[0]; r.Err != "" || r.HeadingErr != "" || r.HeadingDeg != wantHeading.Deg() || r.Danger {
		t.Fatalf("nav ring: %+v, want heading %v", r, wantHeading.Deg())
	}
	if r := got.Results[1]; r.Err != "" || !r.Danger || r.HeadingErr == "" {
		t.Fatalf("danger ring: %+v", r)
	}
	if r := got.Results[2]; r.Err != "" || r.PulseErr != "" || r.Pulse != "take-off" {
		t.Fatalf("pulse ring: %+v", r)
	}
}

// TestGraphIMUEndpoint runs one steady-hover window through
// POST /v1/graph/imu.
func TestGraphIMUEndpoint(t *testing.T) {
	_, _, hs := testService(t, server.Options{}, pipeline.Config{Workers: 2})
	window := make([]map[string]any, 64)
	for i := range window {
		window[i] = map[string]any{
			"t_s":        float64(i) * 0.02,
			"accel":      [3]float64{0, 0, imu.Gravity},
			"baro_alt_m": 5.0,
		}
	}
	var got struct {
		Results []server.IMUResult `json:"results"`
	}
	postGraphJSON(t, hs.URL+"/v1/graph/imu", map[string]any{
		"windows": []any{window},
	}, &got)
	if len(got.Results) != 1 {
		t.Fatalf("%d results for 1 window", len(got.Results))
	}
	r := got.Results[0]
	if r.Err != "" || r.Samples != 64 || r.State == "" || r.Transitions == 0 {
		t.Fatalf("imu reading: %+v", r)
	}
}

// TestGraphFlightEndpoint classifies a cruise trajectory through
// POST /v1/graph/flight, plus an error slot for a too-short one.
func TestGraphFlightEndpoint(t *testing.T) {
	_, _, hs := testService(t, server.Options{}, pipeline.Config{Workers: 2})
	cruise := make([]map[string]any, 16)
	for i := range cruise {
		cruise[i] = map[string]any{
			"t_s":         float64(i) * 0.5,
			"pos":         [3]float64{float64(i) * 0.8, 0, 5},
			"heading_deg": 0.0,
		}
	}
	var got struct {
		Results []server.FlightResult `json:"results"`
	}
	postGraphJSON(t, hs.URL+"/v1/graph/flight", map[string]any{
		"trajectories": []any{cruise, cruise[:1]},
	}, &got)
	if len(got.Results) != 2 {
		t.Fatalf("%d results for 2 trajectories", len(got.Results))
	}
	if r := got.Results[0]; r.Err != "" || r.Pattern == "" {
		t.Fatalf("cruise: %+v", r)
	}
	if r := got.Results[1]; r.Err == "" {
		t.Fatalf("short trajectory answered without error: %+v", r)
	}
}

// TestGraphIndexAndStatsz checks the registry surfaces: /v1/graph lists the
// servable workloads (no gesture without the option), and after traffic the
// built graph's stats appear both there and on /statsz, with its node owner
// attributed in the pool breakdown.
func TestGraphIndexAndStatsz(t *testing.T) {
	sys, _, hs := testService(t, server.Options{}, pipeline.Config{Workers: 2})

	var idx struct {
		Workloads []string `json:"workloads"`
		Graphs    []json.RawMessage
	}
	resp, err := http.Get(hs.URL + "/v1/graph")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&idx); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	want := []string{"recognize", "ledring", "imu", "flight"}
	if fmt.Sprint(idx.Workloads) != fmt.Sprint(want) {
		t.Fatalf("workloads %v, want %v", idx.Workloads, want)
	}
	if len(idx.Graphs) != 0 {
		t.Fatalf("graphs built before any traffic: %d", len(idx.Graphs))
	}

	frames := signFrames(t, sys, signPattern(0, 3))
	var out struct {
		Results []server.FrameResult `json:"results"`
	}
	postGraphJSON(t, hs.URL+"/v1/graph/recognize",
		map[string]any{"frames": wireFrames(frames)}, &out)

	c := client.New(hs.URL, nil)
	stats, err := c.Statsz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Graphs) != 1 || stats.Graphs[0].Name != "recognize" || stats.Graphs[0].Submitted != 3 {
		t.Fatalf("statsz graphs: %+v", stats.Graphs)
	}
	if ep, ok := stats.Endpoints["graph"]; !ok || ep.Count != 1 {
		t.Fatalf("statsz graph endpoint: %+v (ok=%v)", stats.Endpoints["graph"], ok)
	}
	foundOwner := false
	for _, o := range stats.Pool.Owners {
		if o.Label == "recognize/classify" {
			foundOwner = true
		}
	}
	if !foundOwner {
		t.Fatalf("no recognize/classify owner in pool breakdown: %+v", stats.Pool.Owners)
	}
	if gets, puts := stats.FramePool.Gets, stats.FramePool.Puts; gets != puts {
		t.Fatalf("frame pool unbalanced after graph batch: %d gets, %d puts", gets, puts)
	}
}
