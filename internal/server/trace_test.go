package server_test

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"

	"hdc/internal/pipeline"
	"hdc/internal/server"
	"hdc/internal/server/client"
)

// traceStageNames are the boundaries a /tracez frame may report, in
// pipeline order — the wire schema contract.
var traceStageNames = map[string]bool{
	"offer": true, "enqueue": true, "dequeue": true, "binarize": true,
	"features": true, "classify": true, "deliver": true,
}

// checkTracezSchema asserts one /tracez payload is internally consistent:
// valid terminals and stage names, monotone spans, percentile ordering, and
// the finished ≤ begun totals invariant.
func checkTracezSchema(t *testing.T, resp server.TracezResponse) {
	t.Helper()
	finished := resp.Totals.Delivered + resp.Totals.Shed + resp.Totals.Abandoned
	if finished > resp.Totals.Begun {
		t.Fatalf("finished %d > begun %d", finished, resp.Totals.Begun)
	}
	if len(resp.Stages) != 6 {
		t.Fatalf("breakdown has %d spans, want 6: %+v", len(resp.Stages), resp.Stages)
	}
	for _, st := range resp.Stages {
		if st.Count > 0 && (st.P50Ns <= 0 || st.P99Ns < st.P50Ns) {
			t.Fatalf("span %q percentiles out of order: p50=%d p99=%d", st.Stage, st.P50Ns, st.P99Ns)
		}
	}
	for _, f := range resp.Frames {
		switch f.Terminal {
		case "deliver", "shed", "abandon":
		default:
			t.Fatalf("frame %d has terminal %q", f.ID, f.Terminal)
		}
		if len(f.Stages) == 0 {
			t.Fatalf("frame %d has no stage spans", f.ID)
		}
		for _, sp := range f.Stages {
			if !traceStageNames[sp.Stage] {
				t.Fatalf("frame %d has unknown stage %q", f.ID, sp.Stage)
			}
			if sp.SinceNs < 0 {
				t.Fatalf("frame %d stage %q torn: %dns", f.ID, sp.Stage, sp.SinceNs)
			}
		}
	}
}

// TestTracezSchema drives a batch through the service and checks the
// /tracez payload: per-frame spans with the deliver terminal, the per-stage
// p50/p99 breakdown, and the limit parameter.
func TestTracezSchema(t *testing.T) {
	sys, _, hs := testService(t, server.Options{}, pipeline.Config{Workers: 2})
	c := client.New(hs.URL, nil)
	signs := signPattern(0, 8)
	frames := signFrames(t, sys, signs)
	if _, err := c.RecognizeBatch(context.Background(), frames); err != nil {
		t.Fatal(err)
	}

	resp, err := c.Tracez(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Started {
		t.Fatalf("pool served a batch but /tracez says not started")
	}
	if resp.Totals.Delivered < uint64(len(frames)) {
		t.Fatalf("delivered %d < %d frames", resp.Totals.Delivered, len(frames))
	}
	if len(resp.Frames) == 0 {
		t.Fatalf("no frame traces after a batch")
	}
	checkTracezSchema(t, resp)
	for _, st := range resp.Stages {
		if st.Stage == "ingest" {
			continue // batches skip the ingest ring
		}
		if st.Count == 0 {
			t.Fatalf("span %q never observed", st.Stage)
		}
	}

	limited, err := c.Tracez(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(limited.Frames) != 3 {
		t.Fatalf("limit=3 returned %d frames", len(limited.Frames))
	}

	// A malformed limit is a 400, not a 500 or a silent default.
	r, err := http.Get(hs.URL + "/tracez?limit=banana")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("limit=banana: status %d, want 400", r.StatusCode)
	}
}

// TestTracezNotStarted pins the pre-pool payload: started=false and an
// empty snapshot, never an error.
func TestTracezNotStarted(t *testing.T) {
	_, _, hs := testService(t, server.Options{}, pipeline.Config{Workers: 1})
	r, err := http.Get(hs.URL + "/tracez")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", r.StatusCode)
	}
	var resp server.TracezResponse
	if err := json.NewDecoder(r.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Started || resp.Totals.Begun != 0 || len(resp.Frames) != 0 {
		t.Fatalf("expected an empty not-started payload, got %+v", resp)
	}
}

// TestTracezUnderConcurrentLoad scrapes /tracez continuously while four
// operators hammer the batch endpoint. Run under -race in CI, this is the
// torn-read check at the HTTP boundary: every observed payload must satisfy
// the schema and totals invariants mid-flight.
func TestTracezUnderConcurrentLoad(t *testing.T) {
	sys, _, hs := testService(t, server.Options{}, pipeline.Config{Workers: 4, TraceBuffer: 32})
	const operators = 4
	const batches = 6

	var wg sync.WaitGroup
	for op := 0; op < operators; op++ {
		wg.Add(1)
		go func(op int) {
			defer wg.Done()
			c := client.New(hs.URL, nil)
			signs := signPattern(op, 6)
			frames := signFrames(t, sys, signs)
			for b := 0; b < batches; b++ {
				if _, err := c.RecognizeBatch(context.Background(), frames); err != nil {
					t.Error(err)
					return
				}
			}
		}(op)
	}

	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		c := client.New(hs.URL, nil)
		for i := 0; i < 50; i++ {
			resp, err := c.Tracez(context.Background(), 16)
			if err != nil {
				t.Error(err)
				return
			}
			if resp.Started {
				checkTracezSchema(t, resp)
			}
		}
	}()
	wg.Wait()
	<-scrapeDone

	c := client.New(hs.URL, nil)
	resp, err := c.Tracez(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Most frames travel the pool, but under overload the admission layer may
	// answer some batches with degraded stage-0 verdicts that never enter it
	// — so the floor is "a healthy majority traced", not an exact count.
	want := uint64(operators * batches * 6 / 2)
	if resp.Totals.Begun < want {
		t.Fatalf("begun %d < %d (half the submitted frames)", resp.Totals.Begun, want)
	}
	checkTracezSchema(t, resp)
}
