package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"image"
	"image/png"
	"io"
	"math"
	"net/http"
	"strconv"

	"hdc/internal/failpoint"
	"hdc/internal/pipeline"
	"hdc/internal/raster"
	"hdc/internal/recognizer"
)

// wire.go defines the frame and result wire formats shared by the server and
// its client package. Three request encodings are accepted, negotiated by
// Content-Type:
//
//   - application/json — {"frames": [{"width": W, "height": H, "pixels":
//     "<base64>"}, ...]} (a single object without the "frames" wrapper on
//     /v1/recognize). encoding/json base64s []byte natively, so the pixel
//     body is standard base64 of the row-major 8-bit gray buffer.
//   - application/octet-stream — the allocation-free hot path: headers
//     X-Frame-Width, X-Frame-Height and (for batches) X-Frame-Count describe
//     the geometry; the body is count×W×H raw gray bytes, read directly into
//     pooled raster.Gray buffers.
//   - image/png — a single grayscale-convertible PNG per request, decoded
//     with the stdlib and converted into a pooled buffer.
//
// Responses are always JSON. Non-finite float fields (an unrivalled match
// has margin +Inf) are encoded as -1 — JSON has no Inf — and documented so
// in DESIGN.md §"The service layer".

// Frame is the JSON wire form of one grayscale frame. Pixels is the
// row-major 8-bit buffer; encoding/json carries it as standard base64.
type Frame struct {
	Width  int    `json:"width"`
	Height int    `json:"height"`
	Pixels []byte `json:"pixels"`
}

// FrameFromRaster copies g into a wire Frame (for clients).
func FrameFromRaster(g *raster.Gray) Frame {
	pix := make([]byte, len(g.Pix))
	copy(pix, g.Pix)
	return Frame{Width: g.W, Height: g.H, Pixels: pix}
}

// batchRequest is the JSON body of /v1/batch and /v1/streams/{id}/frames.
type batchRequest struct {
	Frames []Frame `json:"frames"`
}

// FrameResult is the per-frame recognition verdict on the wire.
type FrameResult struct {
	OK         bool    `json:"ok"`
	Sign       string  `json:"sign,omitempty"`
	Label      string  `json:"label,omitempty"`
	Dist       float64 `json:"dist"`
	Confidence float64 `json:"confidence"`
	// Margin is the absolute distance gap to the nearest rival label; -1
	// encodes "no rival at all" (the in-process API uses +Inf, which JSON
	// cannot carry).
	Margin       float64 `json:"margin"`
	RunnerUp     string  `json:"runner_up,omitempty"`
	RunnerUpDist float64 `json:"runner_up_dist,omitempty"`
	// Err is "" on an accepted sign, "no_sign" when the frame held no
	// recognisable sign, "draining" when the pool shut down under the
	// request, "deadline" when the request's X-Deadline-Ms budget expired
	// before this frame finished, or the error text otherwise.
	Err string `json:"error,omitempty"`
	// Degraded marks a verdict served from the cascade's stage-0 path
	// (overload or read-only store): Dist is a lower bound, not an exact
	// distance, and the rival diagnostics are absent. See DESIGN.md §"The
	// dependability layer".
	Degraded bool `json:"degraded,omitempty"`
	// LatencyNS is the recogniser's end-to-end stage time for this frame.
	LatencyNS int64 `json:"latency_ns,omitempty"`
}

// ErrValueNoSign, ErrValueDraining and ErrValueDeadline are the reserved
// FrameResult.Err values.
const (
	ErrValueNoSign   = "no_sign"
	ErrValueDraining = "draining"
	ErrValueDeadline = "deadline"
)

// batchResponse is the JSON body answering batch and stream-frame requests.
type batchResponse struct {
	Results []FrameResult `json:"results"`
}

// streamInfo describes a stream session on the wire.
type streamInfo struct {
	ID        string `json:"id"`
	Window    int    `json:"window"`    // per-stream in-flight frame bound
	Submitted uint64 `json:"submitted"` // frames accepted so far
}

// errorResponse is the JSON body of every non-2xx answer.
type errorResponse struct {
	Error string `json:"error"`
}

// finite maps non-finite floats to the wire sentinel -1.
func finite(f float64) float64 {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return -1
	}
	return f
}

// resultToWire converts one recogniser verdict to its wire form.
func resultToWire(res recognizer.Result, err error) FrameResult {
	out := FrameResult{
		OK:         res.OK,
		Dist:       finite(res.Match.Dist),
		Confidence: finite(res.Confidence),
		Margin:     finite(res.Margin),
		LatencyNS:  res.Timings.Total.Nanoseconds(),
	}
	if res.OK {
		out.Sign = res.Sign.String()
	}
	out.Label = res.Match.Label
	if res.RunnerUp.Label != "" {
		out.RunnerUp = res.RunnerUp.Label
		out.RunnerUpDist = finite(res.RunnerUp.Dist)
	}
	switch {
	case err == nil:
	case errors.Is(err, recognizer.ErrNoSign):
		out.Err = ErrValueNoSign
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		out.Err = ErrValueDeadline
	case errors.Is(err, pipeline.ErrClosed), errors.Is(err, pipeline.ErrStreamClosed):
		out.Err = ErrValueDraining
	default:
		out.Err = err.Error()
	}
	return out
}

// Wire decode limits; see Options for the configurable batch bound.
const maxFramePixels = 4096 * 4096

var (
	errBadGeometry = errors.New("server: frame geometry out of range")
	errBodySize    = errors.New("server: request body does not match geometry")
)

// frameGeometry validates one frame's dimensions. The product is checked by
// division so attacker-controlled headers near (or past) the integer limit
// cannot wrap w*h around to a small value — 2^32 × 2^32 wraps to 0 on
// 64-bit ints, which would build a frame whose pixel buffer is shorter than
// W*H and panic a pool worker.
func frameGeometry(w, h int) error {
	if w <= 0 || h <= 0 || w > maxFramePixels/h {
		return fmt.Errorf("%w: %dx%d", errBadGeometry, w, h)
	}
	return nil
}

// decodeFrames reads the request's frames into buffers drawn from pool.
// Every returned frame must be handed back with pool.Put once its result is
// out — the caller owns that lifecycle. maxBatch bounds the frame count.
func decodeFrames(r *http.Request, pool *raster.Pool, maxBatch int, single bool) ([]*raster.Gray, error) {
	if err := failpoint.Inject(failpoint.ServerDecode); err != nil {
		return nil, err
	}
	ct := r.Header.Get("Content-Type")
	switch {
	case ct == "application/octet-stream":
		return decodeRawFrames(r, pool, maxBatch, single)
	case ct == "image/png":
		return decodePNGFrame(r, pool)
	default: // application/json (and unset, for curl convenience)
		return decodeJSONFrames(r, pool, maxBatch, single)
	}
}

// decodeRawFrames is the pooled zero-copy path: the body is count
// contiguous W×H gray planes, read straight into pooled pixel buffers.
func decodeRawFrames(r *http.Request, pool *raster.Pool, maxBatch int, single bool) ([]*raster.Gray, error) {
	w, err1 := strconv.Atoi(r.Header.Get("X-Frame-Width"))
	h, err2 := strconv.Atoi(r.Header.Get("X-Frame-Height"))
	if err1 != nil || err2 != nil {
		return nil, errors.New("server: octet-stream requests need X-Frame-Width and X-Frame-Height")
	}
	if err := frameGeometry(w, h); err != nil {
		return nil, err
	}
	count := 1
	if !single {
		if c := r.Header.Get("X-Frame-Count"); c != "" {
			count, err1 = strconv.Atoi(c)
			if err1 != nil || count <= 0 {
				return nil, errors.New("server: bad X-Frame-Count")
			}
		}
	}
	if count > maxBatch {
		return nil, fmt.Errorf("server: batch of %d exceeds limit %d", count, maxBatch)
	}
	frames := make([]*raster.Gray, 0, count)
	for i := 0; i < count; i++ {
		g := pool.Get(w, h)
		if _, err := io.ReadFull(r.Body, g.Pix); err != nil {
			pool.Put(g)
			releaseFrames(pool, frames)
			return nil, fmt.Errorf("%w: frame %d: %v", errBodySize, i, err)
		}
		frames = append(frames, g)
	}
	return frames, nil
}

// decodeJSONFrames handles the base64 JSON encoding. The base64 byte slices
// are decoded by encoding/json; the pixels are then copied into pooled
// buffers so the recognition path sees the same frame lifecycle as the raw
// path.
func decodeJSONFrames(r *http.Request, pool *raster.Pool, maxBatch int, single bool) ([]*raster.Gray, error) {
	dec := json.NewDecoder(r.Body)
	var wire []Frame
	if single {
		var f Frame
		if err := dec.Decode(&f); err != nil {
			return nil, fmt.Errorf("server: bad frame JSON: %w", err)
		}
		wire = []Frame{f}
	} else {
		var req batchRequest
		if err := dec.Decode(&req); err != nil {
			return nil, fmt.Errorf("server: bad batch JSON: %w", err)
		}
		wire = req.Frames
	}
	if len(wire) == 0 {
		return nil, errors.New("server: empty batch")
	}
	if len(wire) > maxBatch {
		return nil, fmt.Errorf("server: batch of %d exceeds limit %d", len(wire), maxBatch)
	}
	frames := make([]*raster.Gray, 0, len(wire))
	for i, f := range wire {
		if err := frameGeometry(f.Width, f.Height); err != nil {
			releaseFrames(pool, frames)
			return nil, fmt.Errorf("frame %d: %w", i, err)
		}
		if len(f.Pixels) != f.Width*f.Height {
			releaseFrames(pool, frames)
			return nil, fmt.Errorf("%w: frame %d: %d pixels for %dx%d",
				errBodySize, i, len(f.Pixels), f.Width, f.Height)
		}
		g := pool.Get(f.Width, f.Height)
		copy(g.Pix, f.Pixels)
		frames = append(frames, g)
	}
	return frames, nil
}

// decodePNGFrame decodes one PNG body into a pooled gray frame. The header
// is checked with DecodeConfig before the pixel decode runs, so a tiny body
// declaring enormous dimensions (a decompression bomb) is rejected before
// the decoder allocates for it.
func decodePNGFrame(r *http.Request, pool *raster.Pool) ([]*raster.Gray, error) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return nil, fmt.Errorf("server: reading PNG body: %w", err)
	}
	cfg, err := png.DecodeConfig(bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("server: bad PNG: %w", err)
	}
	if err := frameGeometry(cfg.Width, cfg.Height); err != nil {
		return nil, err
	}
	img, err := png.Decode(bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("server: bad PNG: %w", err)
	}
	b := img.Bounds()
	if err := frameGeometry(b.Dx(), b.Dy()); err != nil {
		return nil, err
	}
	g := pool.Get(b.Dx(), b.Dy())
	if gi, ok := img.(*image.Gray); ok {
		for y := 0; y < g.H; y++ {
			copy(g.Pix[y*g.W:(y+1)*g.W], gi.Pix[y*gi.Stride:y*gi.Stride+g.W])
		}
		return []*raster.Gray{g}, nil
	}
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			r16, g16, b16, _ := img.At(b.Min.X+x, b.Min.Y+y).RGBA()
			// ITU-R 601 luma, 16-bit channels down to 8.
			g.Pix[y*g.W+x] = uint8((299*r16 + 587*g16 + 114*b16) / 1000 >> 8)
		}
	}
	return []*raster.Gray{g}, nil
}

// releaseFrames returns a decoded frame set to the pool.
func releaseFrames(pool *raster.Pool, frames []*raster.Gray) {
	for _, f := range frames {
		pool.Put(f)
	}
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		http.Error(w, `{"error":"encode"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
}

// writeError writes a JSON error body.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
