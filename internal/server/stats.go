package server

import (
	"runtime"
	"sync/atomic"
	"time"

	"hdc/internal/graph"
	"hdc/internal/pipeline"
	"hdc/internal/sax/store"
)

// stats.go instruments the service: every endpoint keeps lock-free counters
// and an exponential latency histogram, and /statsz snapshots them together
// with the recognition pool's occupancy. The histogram trades exactness for
// zero allocation on the hot path: buckets double from 16 µs up, so the p50
// and p99 estimates carry at most one-bucket (≈2×) resolution error — the
// right fidelity for a load signal, and the loadgen reports exact
// percentiles when precision matters (E19).

// latencyBuckets is the number of power-of-two histogram buckets. Bucket 0
// holds [0, 16µs); bucket i≥1 holds [16µs·2^(i-1), 16µs·2^i); the last
// bucket (24) is open-ended, catching everything from 16µs·2^23 ≈ 2.2 min
// up. bucketUpperNs(b) is the exclusive upper edge of bucket b, which is
// what the percentile estimator reports.
const (
	latencyBuckets   = 25
	latencyBucket0Ns = 16_000 // 16 µs
)

// bucketOf maps a duration to its histogram bucket.
func bucketOf(d time.Duration) int {
	ns := d.Nanoseconds()
	b := 0
	for lim := int64(latencyBucket0Ns); ns >= lim && b < latencyBuckets-1; lim *= 2 {
		b++
	}
	return b
}

// bucketUpperNs is the exclusive upper bound of bucket b in nanoseconds
// (the top bucket is open-ended, so its "bound" is only the estimator's
// reporting value).
func bucketUpperNs(b int) int64 {
	return int64(latencyBucket0Ns) << uint(b)
}

// endpointStats is the per-endpoint counter set. All fields are atomics;
// record is safe from any number of request goroutines.
type endpointStats struct {
	count   atomic.Uint64
	errors  atomic.Uint64
	frames  atomic.Uint64
	totalNs atomic.Int64
	maxNs   atomic.Int64
	hist    [latencyBuckets]atomic.Uint64
}

// record logs one request: its wall time, how many frames it carried and
// whether it failed.
func (e *endpointStats) record(d time.Duration, frames int, failed bool) {
	e.count.Add(1)
	e.frames.Add(uint64(frames))
	if failed {
		e.errors.Add(1)
	}
	ns := d.Nanoseconds()
	e.totalNs.Add(ns)
	for {
		old := e.maxNs.Load()
		if ns <= old || e.maxNs.CompareAndSwap(old, ns) {
			break
		}
	}
	e.hist[bucketOf(d)].Add(1)
}

// EndpointSnapshot is the JSON form of one endpoint's counters.
type EndpointSnapshot struct {
	Count  uint64  `json:"count"`
	Errors uint64  `json:"errors"`
	Frames uint64  `json:"frames"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// snapshot folds the counters into their wire form. The percentile estimates
// are the upper bounds of the histogram buckets holding the p50/p99 ranks.
func (e *endpointStats) snapshot() EndpointSnapshot {
	s := EndpointSnapshot{
		Count:  e.count.Load(),
		Errors: e.errors.Load(),
		Frames: e.frames.Load(),
		MaxMS:  float64(e.maxNs.Load()) / 1e6,
	}
	if s.Count > 0 {
		s.MeanMS = float64(e.totalNs.Load()) / float64(s.Count) / 1e6
	}
	var counts [latencyBuckets]uint64
	var total uint64
	for i := range counts {
		counts[i] = e.hist[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return s
	}
	s.P50MS = float64(percentileUpperNs(counts[:], total, 50)) / 1e6
	s.P99MS = float64(percentileUpperNs(counts[:], total, 99)) / 1e6
	return s
}

// percentileUpperNs returns the upper bound of the bucket containing the
// p-th percentile rank — the first sample that exceeds p% of the
// population, so a 1-in-100 tail still surfaces in the p99.
func percentileUpperNs(counts []uint64, total uint64, p int) int64 {
	rank := total*uint64(p)/100 + 1
	if rank > total {
		rank = total
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			return bucketUpperNs(i)
		}
	}
	return bucketUpperNs(len(counts) - 1)
}

// PoolSnapshot is the recognition pool's occupancy on the wire.
type PoolSnapshot struct {
	Started  bool `json:"started"`
	Closed   bool `json:"closed"`
	Workers  int  `json:"workers"`
	QueueLen int  `json:"queue_len"`
	QueueCap int  `json:"queue_cap"`
	Streams  int  `json:"streams"`
	// IngestAccepted/IngestDropped total the live-feed ring buffers in
	// front of the pool's streams: drops growing under load is the ingest
	// layer shedding frames instead of stalling capture.
	IngestAccepted uint64 `json:"ingest_accepted"`
	IngestDropped  uint64 `json:"ingest_dropped"`
	// Attached counts the systems sharing this pool (pipeline.Attach);
	// Owners breaks the pool's traffic down per attached system. A server
	// fronting a private system reports one owner; a server whose System
	// joined a fleet pool reports every tenant, which is how an operator
	// sees one wedged drone shedding at its own ring.
	Attached int             `json:"attached,omitempty"`
	Owners   []OwnerSnapshot `json:"owners,omitempty"`
}

// OwnerSnapshot is one attached system's share of the pool on the wire.
type OwnerSnapshot struct {
	Label          string `json:"label"`
	Streams        int    `json:"streams"`
	StreamsTotal   uint64 `json:"streams_total"`
	Frames         uint64 `json:"frames"`
	IngestAccepted uint64 `json:"ingest_accepted"`
	IngestDropped  uint64 `json:"ingest_dropped"`
}

// FramePoolSnapshot reports the server's frame-buffer checkout counters;
// gets−puts is the number of pooled frames currently out, which must stay
// bounded (a steadily growing gap is a frame leak).
type FramePoolSnapshot struct {
	Gets uint64 `json:"gets"`
	Puts uint64 `json:"puts"`
}

// SessionSnapshot summarises the stream-session table.
type SessionSnapshot struct {
	Open    int    `json:"open"`
	Created uint64 `json:"created"`
	Reaped  uint64 `json:"reaped"`
}

// MemSnapshot carries the allocation counters behind the latency numbers:
// TotalAlloc only ever grows, so its derivative under load is the service's
// true allocation rate (the pooled wire path should keep it near flat).
type MemSnapshot struct {
	HeapAllocBytes  uint64 `json:"heap_alloc_bytes"`
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	NumGC           uint32 `json:"num_gc"`
	Goroutines      int    `json:"goroutines"`
}

// AdmissionSnapshot is the dependability layer's state on the wire:
// admission-control occupancy, the shed/degrade counters, and the
// overload/read-only signals that flip answers to the degraded path. A
// growing Rejected under steady load means the in-flight cap is the
// bottleneck; a nonzero Degraded means clients have been receiving stage-0
// answers (marked degraded:true per result).
type AdmissionSnapshot struct {
	InflightFrames    int64  `json:"inflight_frames"`
	MaxInflightFrames int    `json:"max_inflight_frames"`
	Rejected          uint64 `json:"rejected"`
	DegradedFrames    uint64 `json:"degraded_frames"`
	Overloaded        bool   `json:"overloaded"`
	StoreReadOnly     bool   `json:"store_read_only"`
}

// StatsResponse is the /statsz body. Store is present only when the process
// serves from an on-disk dictionary (Options.Store): its segment/tail/WAL
// shape is the signal that compaction is keeping up with appends, and its
// ReadOnly flag is the sticky write-failure latch that also drops the
// replica out of readiness.
type StatsResponse struct {
	UptimeS   float64                     `json:"uptime_s"`
	Draining  bool                        `json:"draining"`
	Admission AdmissionSnapshot           `json:"admission"`
	Pool      PoolSnapshot                `json:"pool"`
	FramePool FramePoolSnapshot           `json:"frame_pool"`
	Sessions  SessionSnapshot             `json:"sessions"`
	Endpoints map[string]EndpointSnapshot `json:"endpoints"`
	// Graphs carries live stats for the served dataflow topologies built so
	// far (graph.go); per-node pool attribution rides in Pool.Owners under
	// the "<graph>/<node>" labels.
	Graphs []graph.Stats `json:"graphs,omitempty"`
	Mem    MemSnapshot   `json:"mem"`
	Store  *store.Stats  `json:"store,omitempty"`
}

// ownerSnapshots converts the pool's per-owner stats to their wire form.
func ownerSnapshots(owners []pipeline.OwnerStats) []OwnerSnapshot {
	if len(owners) == 0 {
		return nil
	}
	out := make([]OwnerSnapshot, len(owners))
	for i, o := range owners {
		out[i] = OwnerSnapshot{
			Label:          o.Label,
			Streams:        o.Streams,
			StreamsTotal:   o.StreamsTotal,
			Frames:         o.Frames,
			IngestAccepted: o.IngestAccepted,
			IngestDropped:  o.IngestDropped,
		}
	}
	return out
}

// memSnapshot reads the runtime counters.
func memSnapshot() MemSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return MemSnapshot{
		HeapAllocBytes:  ms.HeapAlloc,
		TotalAllocBytes: ms.TotalAlloc,
		NumGC:           ms.NumGC,
		Goroutines:      runtime.NumGoroutine(),
	}
}
