package server_test

import (
	"context"
	"encoding/json"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hdc/internal/body"
	"hdc/internal/failpoint"
	"hdc/internal/gesture"
	"hdc/internal/pipeline"
	"hdc/internal/server"
	"hdc/internal/server/client"
)

// chaos_test.go is the randomized fault-injection suite: a controller
// goroutine flips failpoint schedules on and off while retrying clients
// drive batch, stream and live-gesture traffic at a small pool. The point is
// not any particular answer but the invariants that must hold through
// arbitrary fault interleavings:
//
//  1. the frame pool rebalances (gets == puts) once traffic drains — no
//     fault path leaks or double-recycles a buffer;
//  2. ingest sheds monotonically (dropped ≤ accepted), never corrupts;
//  3. every delivered result is well-formed — a known sign label when OK,
//     one of the reserved error values or an explicit injected fault
//     otherwise;
//  4. the service still drains cleanly afterwards (enforced by the
//     testService cleanup: Close would deadlock on a wedged pool).
//
// Schedules are randomized but the seed is logged, so a failure reproduces
// with a one-line edit. Failpoints are process-global state: nothing in this
// package runs in parallel, and every test disarms on exit.

// chaosPoints are the fault schedules the controller draws from. Specs keep
// probabilities below 1 so traffic always makes some progress.
var chaosPoints = []struct {
	name  string
	specs []string
}{
	{failpoint.PipelineWorker, []string{"delay(2ms)", "delay(5ms)", "25%error(injected worker fault)"}},
	{failpoint.PipelineRingForward, []string{"delay(2ms)", "50%error(injected forward fault)"}},
	{failpoint.ServerDecode, []string{"20%error(injected decode fault)"}},
	{failpoint.ServerSession, []string{"50%error(injected session fault)"}},
}

// chaosController randomly arms and disarms schedules until stop closes,
// then disarms everything.
func chaosController(rng *rand.Rand, stop <-chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	defer failpoint.DisableAll()
	for {
		select {
		case <-stop:
			return
		case <-time.After(time.Duration(5+rng.Intn(20)) * time.Millisecond):
		}
		p := chaosPoints[rng.Intn(len(chaosPoints))]
		if rng.Intn(3) == 0 {
			failpoint.Disable(p.name)
			continue
		}
		// Enabling can only fail on a bad spec, and these are fixed strings.
		_ = failpoint.Enable(p.name, p.specs[rng.Intn(len(p.specs))])
	}
}

// wellFormed reports whether a frame result is one the service is allowed to
// deliver under chaos: a known label, a reserved error value, or an
// explicitly injected fault. Anything else is corruption.
func wellFormed(known map[string]bool, r server.FrameResult) bool {
	if r.OK {
		return known[r.Sign]
	}
	switch r.Err {
	case server.ErrValueNoSign, server.ErrValueDraining, server.ErrValueDeadline:
		return true
	}
	return strings.HasPrefix(r.Err, "failpoint ")
}

// knownLabels is the label oracle for wellFormed.
func knownLabels() map[string]bool {
	known := make(map[string]bool)
	for _, s := range body.AllSigns() {
		known[s.String()] = true
	}
	return known
}

// chaosClient builds a retrying client tuned for the suite: fast backoff,
// a breaker that effectively never opens (the server is supposed to be
// flaky here — opening would just idle the operator).
func chaosClient(base string) *client.Client {
	return client.NewWithOptions(base, client.Options{
		Timeout:          2 * time.Second,
		MaxAttempts:      3,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       10 * time.Millisecond,
		BreakerThreshold: 1 << 30,
	})
}

// captureTracez writes a full /tracez snapshot to the file named by
// HDC_TRACEZ_CAPTURE, when set. CI exports the variable in the chaos job and
// uploads the file as a build artifact, so every run leaves a real trace
// payload — frames that travelled a faulted pipeline, with their terminals
// and stage breakdown — for offline inspection. A capture failure is logged,
// never fatal: the artifact is a byproduct, not an invariant.
func captureTracez(t *testing.T, c *client.Client) {
	path := os.Getenv("HDC_TRACEZ_CAPTURE")
	if path == "" {
		return
	}
	resp, err := c.Tracez(context.Background(), 0)
	if err != nil {
		t.Logf("tracez capture: %v", err)
		return
	}
	buf, err := json.MarshalIndent(resp, "", "  ")
	if err != nil {
		t.Logf("tracez capture: %v", err)
		return
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Logf("tracez capture: %v", err)
		return
	}
	t.Logf("tracez capture: %d frames to %s", len(resp.Frames), path)
}

// waitBalanced polls /statsz until the frame pool is balanced and admission
// shows no in-flight frames, failing after 10s. It returns the final stats.
func waitBalanced(t *testing.T, c *client.Client) server.StatsResponse {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		stats, err := c.Statsz(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if stats.FramePool.Gets == stats.FramePool.Puts && stats.Admission.InflightFrames == 0 {
			return stats
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never rebalanced: frame_pool=%+v admission=%+v",
				stats.FramePool, stats.Admission)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChaosBatchAndStream runs mixed batch + ordered-stream traffic from
// retrying clients under randomized worker/decode/session faults, some
// requests carrying tight deadlines.
func TestChaosBatchAndStream(t *testing.T) {
	defer failpoint.DisableAll()
	seed := time.Now().UnixNano()
	t.Logf("chaos seed: %d", seed)

	sys, _, hs := testService(t, server.Options{MaxInflightFrames: 64},
		pipeline.Config{Workers: 2, QueueDepth: 2, StreamWindow: 4})
	signs := signPattern(0, 4)
	frames := signFrames(t, sys, signs)
	known := knownLabels()

	stop := make(chan struct{})
	var chaosWG sync.WaitGroup
	chaosWG.Add(1)
	go chaosController(rand.New(rand.NewSource(seed)), stop, &chaosWG)

	var delivered, malformed, failedReqs atomic.Int64
	note := func(results []server.FrameResult) {
		for _, r := range results {
			delivered.Add(1)
			if !wellFormed(known, r) {
				malformed.Add(1)
			}
		}
	}

	const operators = 4
	runFor := 2 * time.Second
	var opWG sync.WaitGroup
	for op := 0; op < operators; op++ {
		opWG.Add(1)
		go func(op int) {
			defer opWG.Done()
			rng := rand.New(rand.NewSource(seed + int64(op) + 1))
			c := chaosClient(hs.URL)
			until := time.Now().Add(runFor)
			for time.Now().Before(until) {
				ctx, cancel := context.Background(), context.CancelFunc(func() {})
				if rng.Intn(4) == 0 {
					// A tight budget: forwarded as X-Deadline-Ms, may expire
					// mid-request under a worker delay schedule.
					ctx, cancel = context.WithTimeout(ctx, 50*time.Millisecond)
				}
				if rng.Intn(2) == 0 {
					results, err := c.RecognizeBatch(ctx, frames)
					if err != nil {
						failedReqs.Add(1)
					} else {
						note(results)
					}
				} else {
					st, err := c.OpenStream(ctx)
					if err != nil {
						failedReqs.Add(1)
						cancel()
						continue
					}
					results, err := st.Submit(ctx, frames...)
					if err != nil {
						failedReqs.Add(1)
					} else {
						note(results)
					}
					_ = st.Close(context.Background())
				}
				cancel()
			}
		}(op)
	}
	opWG.Wait()
	close(stop)
	chaosWG.Wait()
	failpoint.DisableAll()

	if delivered.Load() == 0 {
		t.Fatalf("no results delivered through the chaos window (%d failed requests)", failedReqs.Load())
	}
	if malformed.Load() != 0 {
		t.Fatalf("%d of %d delivered results malformed", malformed.Load(), delivered.Load())
	}
	c := chaosClient(hs.URL)
	stats := waitBalanced(t, c)
	if stats.Pool.IngestDropped > stats.Pool.IngestAccepted {
		t.Fatalf("ingest dropped %d > accepted %d", stats.Pool.IngestDropped, stats.Pool.IngestAccepted)
	}
	captureTracez(t, c)
	t.Logf("chaos: delivered=%d failed_requests=%d rejected=%d",
		delivered.Load(), failedReqs.Load(), stats.Admission.Rejected)
}

// TestChaosGestureIngest drives a live gesture session through ring-forward
// and worker faults: offers must keep returning at capture cadence (shedding,
// not stalling), drop totals stay consistent, and the session closes cleanly
// with the pool balanced.
func TestChaosGestureIngest(t *testing.T) {
	defer failpoint.DisableAll()
	seed := time.Now().UnixNano()
	t.Logf("chaos seed: %d", seed)

	sys, hs := gestureService(t, server.Options{},
		pipeline.Config{Workers: 2, QueueDepth: 2, StreamWindow: 4})
	frames := gestureWindow(t, sys, gesture.GestureWave, 0, 24)

	stop := make(chan struct{})
	var chaosWG sync.WaitGroup
	chaosWG.Add(1)
	go chaosController(rand.New(rand.NewSource(seed)), stop, &chaosWG)

	c := chaosClient(hs.URL)
	gst, err := c.OpenGestureStream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	until := time.Now().Add(2 * time.Second)
	var offered, offerErrs int
	for time.Now().Before(until) {
		t0 := time.Now()
		if _, err := gst.Offer(context.Background(), frames[offered%len(frames)]); err != nil {
			offerErrs++
		}
		if el := time.Since(t0); el > time.Second {
			t.Fatalf("offer stalled %v under chaos — ingest must shed, not block", el)
		}
		offered++
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	chaosWG.Wait()
	failpoint.DisableAll()

	feed, err := gst.Close(context.Background())
	if err != nil {
		t.Fatalf("closing gesture session after chaos: %v", err)
	}
	if feed.Dropped > feed.Accepted {
		t.Fatalf("session dropped %d > accepted %d", feed.Dropped, feed.Accepted)
	}
	stats := waitBalanced(t, c)
	if stats.Pool.IngestDropped > stats.Pool.IngestAccepted {
		t.Fatalf("ingest dropped %d > accepted %d", stats.Pool.IngestDropped, stats.Pool.IngestAccepted)
	}
	t.Logf("chaos gesture: offers=%d offer_errors=%d accepted=%d dropped=%d",
		offered, offerErrs, feed.Accepted, feed.Dropped)
}
