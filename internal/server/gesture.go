package server

import (
	"errors"
	"net/http"

	"hdc/internal/gesture"
)

// gesture.go serves the dynamic marshalling signals over the same shared
// pool. Two shapes:
//
//   - POST /v1/gesture — one-shot: the request carries one complete
//     observation window (a batch of frames in any of the three wire
//     encodings) and the response is its verdict. Feature extraction fans
//     out over the pool's workers.
//   - /v1/gesture/streams — live mode: the session owns a bounded
//     drop-oldest ring (pipeline.Source) in front of the pool, so an
//     operator can push frames at capture cadence no matter how loaded the
//     service is. Each push returns immediately with the session's ingest
//     counters and whatever sliding-window verdicts completed since the
//     last push; overload surfaces as a growing dropped count, never a
//     stalled request. DELETE flushes and returns the final verdicts.
//
// Like recognition sessions, live gesture sessions are reaped after
// StreamIdleTimeout; their queued frames recycle back into the server's
// frame pool through the session's OnFrame hook.

// GestureResult is the wire verdict of one gesture window.
type GestureResult struct {
	OK      bool    `json:"ok"`
	Gesture string  `json:"gesture,omitempty"`
	Dist    float64 `json:"dist"`
	Shift   int     `json:"shift"`
	// End is the session-lifetime sequence number of the window's newest
	// frame (live sessions only).
	End uint64 `json:"end,omitempty"`
	// Err is "" for an accepted gesture, "no_gesture" for a window that
	// matched nothing, or the error text otherwise.
	Err string `json:"error,omitempty"`
}

// ErrValueNoGesture is the reserved GestureResult.Err value for a clean
// rejection.
const ErrValueNoGesture = "no_gesture"

// gestureMatchToWire converts one verdict.
func gestureMatchToWire(m gesture.Match, err error) GestureResult {
	out := GestureResult{OK: err == nil, Dist: finite(m.Dist), Shift: m.Shift}
	if m.Gesture.Valid() {
		out.Gesture = m.Gesture.String()
	}
	switch {
	case err == nil:
	case errors.Is(err, gesture.ErrNoGesture):
		out.Err = ErrValueNoGesture
	default:
		out.Err = err.Error()
	}
	return out
}

// GestureFeed answers live-session pushes (and the final DELETE):
// the session's ingest accounting plus the verdicts completed so far.
type GestureFeed struct {
	ID       string `json:"id"`
	Accepted uint64 `json:"accepted"` // frames taken in over the session's life
	Dropped  uint64 `json:"dropped"`  // frames shed by the ring (overload)
	Depth    int    `json:"depth"`    // frames queued right now
	Frames   uint64 `json:"frames"`   // frames whose features reached the window
	Windows  uint64 `json:"windows"`  // windows classified
	// MissedMatches counts verdicts the session shed because the poller
	// lagged behind the verdict buffer — the signal to poll more often.
	MissedMatches uint64          `json:"missed_matches"`
	Matches       []GestureResult `json:"matches"` // verdicts since the last push
}

// feedResponse snapshots a session and drains its ready verdicts. max
// bounds the drain so one response stays bounded; <0 drains everything,
// returning only when the channel is empty or closed (after Live.Close the
// channel is closed, so <0 collects every remaining verdict).
func feedResponse(sess *session, max int) GestureFeed {
	st := sess.live.Stats()
	out := GestureFeed{
		ID:            sess.id,
		Accepted:      st.Accepted,
		Dropped:       st.Dropped,
		Depth:         st.Depth,
		Frames:        st.Frames,
		Windows:       st.Windows,
		MissedMatches: st.MissedMatches,
	}
	for max < 0 || len(out.Matches) < max {
		select {
		case m, ok := <-sess.live.Matches():
			if !ok {
				return out
			}
			out.Matches = append(out.Matches, toWireWindow(m))
		default:
			return out
		}
	}
	return out
}

func toWireWindow(m gesture.WindowMatch) GestureResult {
	r := gestureMatchToWire(m.Match, m.Err)
	r.End = m.End
	return r
}

// handleGesture answers POST /v1/gesture: one observation window in, one
// verdict out. Decode failures are 400; a window that matched nothing is a
// 200 with error "no_gesture" (a verdict, not a failure).
func (s *Server) handleGesture(w http.ResponseWriter, r *http.Request) (int, bool) {
	if !s.acceptingWork() {
		writeError(w, http.StatusServiceUnavailable, errDraining)
		return 0, true
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	frames, err := decodeFrames(r, &s.framePool, s.opts.MaxBatch, false)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return 0, true
	}
	// ClassifyFrames owns the frames from here: every one comes back
	// through the recycle hook exactly once, error paths included.
	m, err := s.opts.Gesture.ClassifyFrames(s.sys, frames, s.framePool.Put)
	if errors.Is(err, gesture.ErrShortWindow) {
		// A malformed request, not a verdict: too few frames to mean
		// anything against full-cycle-calibrated thresholds.
		writeError(w, http.StatusBadRequest, err)
		return len(frames), true
	}
	out := gestureMatchToWire(m, err)
	failed := err != nil && !errors.Is(err, gesture.ErrNoGesture)
	writeJSON(w, http.StatusOK, out)
	return len(frames), failed
}

// handleGestureStreamCreate answers POST /v1/gesture/streams: opens a
// live-feed session with its ingest ring on the shared pool.
func (s *Server) handleGestureStreamCreate(w http.ResponseWriter, r *http.Request) {
	if !s.acceptingWork() {
		writeError(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	l, err := s.opts.Gesture.NewLive(s.sys, gesture.LiveConfig{
		Buffer: s.opts.GestureBuffer,
		// The service polls matches over HTTP, so give slow pollers slack
		// before verdicts are shed.
		MatchBuffer: 64,
		OnFrame:     s.framePool.Put,
	})
	if err != nil {
		// The real cause matters here: a drain is one reason NewLive can
		// fail, a bad pipeline config on first pool start is another.
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	sess := s.sessions.addLive(l, l.Buffer())
	writeJSON(w, http.StatusCreated, streamInfo{ID: sess.id, Window: sess.window})
}

// getLiveSession looks up a live gesture session.
func (s *Server) getLiveSession(w http.ResponseWriter, r *http.Request) (*session, bool) {
	sess, ok := s.sessions.get(r.PathValue("id"))
	if !ok || sess.live == nil {
		writeError(w, http.StatusNotFound, errors.New("server: unknown gesture stream"))
		return nil, false
	}
	return sess, true
}

// handleGestureStreamInfo answers GET /v1/gesture/streams/{id} with the
// session's counters (no verdicts are consumed).
func (s *Server) handleGestureStreamInfo(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.getLiveSession(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, feedResponse(sess, 0))
}

// handleGestureFeed answers POST /v1/gesture/streams/{id}/frames: the
// request's frames are offered to the session's ring — never blocking on
// the pool — and the response reports the ingest counters plus the verdicts
// that completed since the last push.
func (s *Server) handleGestureFeed(w http.ResponseWriter, r *http.Request) (int, bool) {
	sess, ok := s.getLiveSession(w, r)
	if !ok {
		return 0, true
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	frames, err := decodeFrames(r, &s.framePool, s.opts.MaxBatch, false)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return 0, true
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.closed {
		releaseFrames(&s.framePool, frames)
		writeError(w, http.StatusGone, errors.New("server: stream closed"))
		return 0, true
	}
	sess.touch(s.opts.now())
	defer func() { sess.touch(s.opts.now()) }()
	for i, f := range frames {
		if err := sess.live.Offer(f); err != nil {
			// The pool shut down underneath the session: its feed is dead,
			// not merely loaded. End the session and say so — a 200 with
			// stale counters would let a camera push frames into the void
			// forever (the recognition endpoints report draining here too).
			releaseFrames(&s.framePool, frames[i:])
			sess.closed = true
			s.sessions.remove(sess.id)
			sess.live.Abandon()
			writeError(w, http.StatusGone, errors.New("server: gesture stream closed: "+err.Error()))
			return len(frames), true
		}
	}
	sess.submitted.Add(uint64(len(frames)))
	writeJSON(w, http.StatusOK, feedResponse(sess, s.opts.MaxBatch))
	return len(frames), false
}

// handleGestureStreamDelete answers DELETE /v1/gesture/streams/{id}:
// graceful end — queued frames flush through the pool and the final
// verdicts come back in the response body.
func (s *Server) handleGestureStreamDelete(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.getLiveSession(w, r)
	if !ok {
		return
	}
	sess.mu.Lock() // waits for an in-flight feed request to finish
	defer sess.mu.Unlock()
	if sess.closed {
		writeError(w, http.StatusGone, errors.New("server: stream closed"))
		return
	}
	sess.closed = true
	s.sessions.remove(sess.id)
	sess.live.Close()
	writeJSON(w, http.StatusOK, feedResponse(sess, -1))
}
