package server

import (
	"errors"
	"net/http"
	"strconv"

	"hdc/internal/trace"
)

// trace.go serves the pipeline's per-frame flight recorder (internal/trace)
// on GET /tracez: the most recent completed frame traces — per-stage spans
// with owner attribution and terminal event — plus the cumulative per-stage
// latency breakdown (p50/p99). It is the per-frame companion to /statsz's
// aggregates: /statsz says the pool is slow, /tracez says which stage of
// which owner's frames is slow.

// tracezDefaultLimit bounds the frames returned when the request does not
// pass ?limit=N. The full buffer is workers × trace-buffer records — too
// much for a human scrape by default.
const tracezDefaultLimit = 64

// TracezResponse is the /tracez payload. Started mirrors /statsz's pool
// semantics: false (with an empty snapshot) until the first streaming call
// starts the worker pool.
type TracezResponse struct {
	Started bool `json:"started"`
	trace.Snapshot
}

// handleTracez answers GET /tracez. ?limit=N bounds the per-frame records
// (default 64, 0 keeps the default; the per-stage breakdown is always
// complete).
func (s *Server) handleTracez(w http.ResponseWriter, r *http.Request) {
	limit := tracezDefaultLimit
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, errors.New("server: limit must be a non-negative integer"))
			return
		}
		if n > 0 {
			limit = n
		}
	}
	tr := s.sys.Tracer()
	if tr == nil {
		writeJSON(w, http.StatusOK, TracezResponse{Started: false})
		return
	}
	writeJSON(w, http.StatusOK, TracezResponse{Started: true, Snapshot: tr.Snapshot(limit)})
}
