package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"hdc/internal/body"
	"hdc/internal/core"
	"hdc/internal/gesture"
	"hdc/internal/pipeline"
	"hdc/internal/raster"
	"hdc/internal/recognizer"
	"hdc/internal/scene"
	"hdc/internal/server"
	"hdc/internal/server/client"
)

// gestureService builds a service with the gesture endpoints enabled; the
// gesture recogniser templates render from the same system renderer the
// test frames use.
func gestureService(t testing.TB, opts server.Options, pipeCfg pipeline.Config) (*core.System, *httptest.Server) {
	t.Helper()
	sys, err := core.NewSystem(
		core.WithSceneConfig(scene.Config{}),
		core.WithPipelineConfig(pipeCfg),
	)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := gesture.NewRecognizer(gesture.Config{}, sys.Rend, scene.ReferenceView())
	if err != nil {
		t.Fatal(err)
	}
	opts.Gesture = rec
	srv := server.New(sys, opts)
	hs := httptest.NewServer(srv)
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
		sys.Close()
	})
	return sys, hs
}

// gestureWindow renders n frames of g starting at phase0 (24 frames/cycle,
// the default template density).
func gestureWindow(t testing.TB, sys *core.System, g gesture.Gesture, phase0 float64, n int) []*raster.Gray {
	t.Helper()
	frames := make([]*raster.Gray, n)
	for i := range frames {
		fig, err := gesture.FigureAt(g, phase0+float64(i)/24, body.Options{})
		if err != nil {
			t.Fatal(err)
		}
		f, err := sys.Rend.RenderFigure(fig, scene.ReferenceView(), nil)
		if err != nil {
			t.Fatal(err)
		}
		frames[i] = f
	}
	return frames
}

// framePoolBalanced polls /statsz until the server's frame pool reports
// every checked-out buffer returned.
func framePoolBalanced(t *testing.T, c *client.Client) {
	t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(10 * time.Second)
	for {
		stats, err := c.Statsz(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if stats.FramePool.Gets == stats.FramePool.Puts {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("frame pool unbalanced: %d gets, %d puts",
				stats.FramePool.Gets, stats.FramePool.Puts)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGestureOneShot drives POST /v1/gesture end to end: a rendered Wave
// window classifies as Wave, a static pose comes back as a no_gesture
// verdict (not an HTTP failure), and every pooled frame is returned.
func TestGestureOneShot(t *testing.T) {
	sys, hs := gestureService(t, server.Options{}, pipeline.Config{Workers: 4})
	c := client.New(hs.URL, nil)
	ctx := context.Background()

	res, err := c.Gesture(ctx, gestureWindow(t, sys, gesture.GestureWave, 0.4, 24))
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.Gesture != "Wave" {
		t.Fatalf("wave window → %+v", res)
	}

	// A held static sign produces flat features: clean rejection on 200.
	static := make([]*raster.Gray, 24)
	fig, err := body.NewFigure(body.SignAttention, body.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range static {
		f, err := sys.Rend.RenderFigure(fig, scene.ReferenceView(), nil)
		if err != nil {
			t.Fatal(err)
		}
		static[i] = f
	}
	res, err = c.Gesture(ctx, static)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK || res.Err != server.ErrValueNoGesture {
		t.Fatalf("static window → %+v, want no_gesture", res)
	}

	// Empty body is a 400.
	resp, err := http.Post(hs.URL+"/v1/gesture", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty gesture request: %d", resp.StatusCode)
	}
	// A sub-cycle window is a 400 too, not a confident bogus verdict: two
	// frames z-normalise into a trivially matchable shape against
	// thresholds calibrated for full cycles.
	shortBody, err := json.Marshal(map[string][]server.Frame{"frames": {
		server.FrameFromRaster(static[0]),
		server.FrameFromRaster(static[1]),
	}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(hs.URL+"/v1/gesture", "application/json", bytes.NewReader(shortBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("2-frame gesture window: %d, want 400", resp.StatusCode)
	}
	framePoolBalanced(t, c)
}

// TestGestureDisabledByDefault pins that the endpoints only exist when the
// recogniser is configured.
func TestGestureDisabledByDefault(t *testing.T) {
	_, _, hs := testService(t, server.Options{}, pipeline.Config{Workers: 1})
	resp, err := http.Post(hs.URL+"/v1/gesture/streams", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("gesture endpoint without recogniser: %d", resp.StatusCode)
	}
}

// TestGestureLiveSession runs the live-feed path over HTTP: pushes hold
// capture cadence, verdicts arrive across polls, DELETE flushes and the
// final feed carries the accounting.
func TestGestureLiveSession(t *testing.T) {
	sys, hs := gestureService(t, server.Options{}, pipeline.Config{Workers: 4})
	c := client.New(hs.URL, nil)
	ctx := context.Background()

	st, err := c.OpenGestureStream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Window <= 0 {
		t.Fatalf("session window %d", st.Window)
	}
	frames := gestureWindow(t, sys, gesture.GestureSeesaw, 0.1, 48)
	var matches []server.GestureResult
	for i := 0; i < len(frames); i += 12 {
		feed, err := st.Offer(ctx, frames[i:i+12]...)
		if err != nil {
			t.Fatal(err)
		}
		matches = append(matches, feed.Matches...)
	}
	// Graceful close flushes the queued tail and returns the rest.
	final, err := st.Close(ctx)
	if err != nil {
		t.Fatal(err)
	}
	matches = append(matches, final.Matches...)

	if final.Accepted != uint64(len(frames)) {
		t.Fatalf("accepted %d, want %d", final.Accepted, len(frames))
	}
	if final.Frames+final.Dropped != final.Accepted {
		t.Fatalf("accounting: %d processed + %d dropped != %d accepted",
			final.Frames, final.Dropped, final.Accepted)
	}
	if len(matches) == 0 {
		t.Fatal("no windows classified over the feed")
	}
	accepted := 0
	for _, m := range matches {
		if m.OK && m.Gesture == "Seesaw" {
			accepted++
		}
	}
	if accepted == 0 {
		t.Fatalf("no Seesaw verdicts in %d windows", len(matches))
	}

	// The session is gone after DELETE.
	resp, err := http.Get(hs.URL + "/v1/gesture/streams/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted session answered %d", resp.StatusCode)
	}
	framePoolBalanced(t, c)

	// The ingest counters surfaced on /statsz.
	stats, err := c.Statsz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pool.IngestAccepted != uint64(len(frames)) {
		t.Fatalf("/statsz ingest accepted %d, want %d", stats.Pool.IngestAccepted, len(frames))
	}
	if _, ok := stats.Endpoints["gesture_feed"]; !ok {
		t.Fatal("/statsz missing gesture_feed endpoint stats")
	}
}

// TestDeadGestureSessionReportsGone pins the dead-feed signal: once the
// pool shuts down underneath a live session, pushes must answer 410 (and
// the session must end) rather than 200-with-stale-counters while every
// frame silently vanishes.
func TestDeadGestureSessionReportsGone(t *testing.T) {
	sys, hs := gestureService(t, server.Options{}, pipeline.Config{Workers: 2})
	c := client.New(hs.URL, nil)
	ctx := context.Background()

	st, err := c.OpenGestureStream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := sys.Rend.Render(body.SignNo, scene.ReferenceView(), body.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Offer(ctx, frame); err != nil {
		t.Fatal(err)
	}
	sys.Close() // the pool dies underneath the open session

	// The source notices asynchronously; pushes must start failing loudly.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err := st.Offer(ctx, frame)
		if err != nil {
			var apiErr *client.APIError
			if !errors.As(err, &apiErr) || apiErr.Status != http.StatusGone {
				t.Fatalf("dead session push: %v, want 410", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pushes kept answering 200 on a dead session")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The session is gone afterwards.
	resp, err := http.Get(hs.URL + "/v1/gesture/streams/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("dead session still answers %d", resp.StatusCode)
	}
}

// TestCrossKindSessionIDsRejected pins the shared-namespace guard: gesture
// and recognition sessions live in one table with one ID sequence, and a
// session ID used against the other kind's endpoints must 404 — it used to
// reach a nil pipeline stream and panic the whole process (or wedge the
// session mutex on DELETE).
func TestCrossKindSessionIDsRejected(t *testing.T) {
	sys, hs := gestureService(t, server.Options{}, pipeline.Config{Workers: 2})
	c := client.New(hs.URL, nil)
	ctx := context.Background()

	gs, err := c.OpenGestureStream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := c.OpenStream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := sys.Rend.Render(body.SignNo, scene.ReferenceView(), body.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	batchBody, err := json.Marshal(map[string][]server.Frame{
		"frames": {server.FrameFromRaster(frame)},
	})
	if err != nil {
		t.Fatal(err)
	}

	for _, probe := range []struct {
		method, path string
		withFrames   bool
	}{
		// Gesture ID against the recognition endpoints.
		{http.MethodPost, "/v1/streams/" + gs.ID + "/frames", true},
		{http.MethodGet, "/v1/streams/" + gs.ID, false},
		{http.MethodDelete, "/v1/streams/" + gs.ID, false},
		// Recognition ID against the gesture endpoints.
		{http.MethodPost, "/v1/gesture/streams/" + rs.ID + "/frames", true},
		{http.MethodGet, "/v1/gesture/streams/" + rs.ID, false},
		{http.MethodDelete, "/v1/gesture/streams/" + rs.ID, false},
	} {
		var bodyReader io.Reader
		if probe.withFrames {
			bodyReader = bytes.NewReader(batchBody)
		}
		httpReq, err := http.NewRequest(probe.method, hs.URL+probe.path, bodyReader)
		if err != nil {
			t.Fatal(err)
		}
		httpReq.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(httpReq)
		if err != nil {
			t.Fatalf("%s %s: %v", probe.method, probe.path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s %s: %d, want 404", probe.method, probe.path, resp.StatusCode)
		}
	}

	// Both sessions survived the cross-kind probes and still work.
	if _, err := rs.Submit(ctx, frame); err != nil {
		t.Fatalf("recognition session broken after probes: %v", err)
	}
	if _, err := gs.Offer(ctx, frame); err != nil {
		t.Fatalf("gesture session broken after probes: %v", err)
	}
}

// TestReapedGestureSessionRecyclesFrames is the counting-pool-under-the-
// reaper regression: a live session abandoned with frames still queued and
// in flight must hand every pooled buffer back through the drop hooks —
// before the hooks existed, each reap stranded up to a window of buffers.
func TestReapedGestureSessionRecyclesFrames(t *testing.T) {
	sys, hs := gestureService(t,
		server.Options{StreamIdleTimeout: 300 * time.Millisecond},
		pipeline.Config{Workers: 1, QueueDepth: 1, StreamWindow: 2})
	c := client.New(hs.URL, nil)
	ctx := context.Background()

	// Wedge the pool's single worker behind a side stream so the session's
	// frames are deterministically still queued — in the ring, the pool
	// queue and in flight — when the idle reaper fires.
	release := make(chan struct{})
	releaseOnce := sync.OnceFunc(func() { close(release) })
	t.Cleanup(releaseOnce)
	wedge, err := sys.NewProcStream(func(sc *recognizer.Scratch, seq uint64, frame *raster.Gray) (recognizer.Result, error) {
		<-release
		return recognizer.Result{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for range wedge.Results() {
		}
	}()
	plug, err := raster.NewGray(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := wedge.Submit(plug); err != nil {
		t.Fatal(err)
	}

	// Cheap uniform frames: the wedge keeps them queued, their content is
	// irrelevant to the leak accounting. Built before the session opens —
	// its idle clock is already ticking.
	flood := make([]*raster.Gray, 24)
	for i := range flood {
		g, err := raster.NewGray(64, 64)
		if err != nil {
			t.Fatal(err)
		}
		g.Pix[i] = 200
		flood[i] = g
	}
	st, err := c.OpenGestureStream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	feed, err := st.Offer(ctx, flood...)
	if err != nil {
		t.Fatal(err)
	}
	if feed.Accepted != 24 {
		t.Fatalf("accepted %d of 24", feed.Accepted)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(hs.URL + "/v1/gesture/streams/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			break // reaped, with the pool still wedged
		}
		if time.Now().After(deadline) {
			t.Fatal("loaded gesture session never reaped")
		}
		time.Sleep(20 * time.Millisecond)
	}
	stats, err := c.Statsz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sessions.Reaped == 0 {
		t.Fatalf("reap not counted: %+v", stats.Sessions)
	}
	if stats.FramePool.Gets == stats.FramePool.Puts {
		t.Fatal("wedged session reports no outstanding frames — nothing was in flight at reap")
	}
	// Un-wedge: the queued frames drain, their results drop through the
	// abandon path, and every pooled buffer must come home.
	releaseOnce()
	wedge.Close()
	framePoolBalanced(t, c)
}
