package server

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hdc/internal/gesture"
	"hdc/internal/pipeline"
)

// streams.go manages session-scoped recognition streams: an operator opens a
// stream (POST /v1/streams), pushes ordered frame batches at it (POST
// /v1/streams/{id}/frames) and either closes it (DELETE) or walks away — an
// idle reaper abandons sessions that stop talking, so a disconnected client
// can never strand pool capacity. Requests on one session are serialised
// (the session mutex), which is what gives a stream its ordering guarantee
// across requests; throughput comes from many sessions sharing the pool.

// session is one live stream: either a recognition stream (st) or a
// pipeline-backed live gesture session (live). Exactly one of the two is
// set.
type session struct {
	id   string
	st   *pipeline.Stream
	live *gesture.Live

	// mu serialises frame requests on this session and excludes the reaper
	// from a session that is mid-request (the reaper uses TryLock).
	mu        sync.Mutex
	closed    bool          // under mu: session ended (DELETE or reap)
	window    int           // stream in-flight bound, or the gesture ring capacity
	submitted atomic.Uint64 // frames accepted over the session's life
	lastUsed  atomic.Int64  // unix nanos of the last request
}

// touch refreshes the idle clock.
func (s *session) touch(now time.Time) { s.lastUsed.Store(now.UnixNano()) }

// abandon releases the session's pool resources for a consumer that is gone
// (reaper, server close). Caller holds s.mu and has set s.closed.
func (s *session) abandon() {
	if s.live != nil {
		s.live.Abandon()
		return
	}
	s.st.Abandon()
}

// sessionTable holds the live sessions and runs the reaper.
type sessionTable struct {
	mu     sync.Mutex
	m      map[string]*session
	nextID atomic.Uint64

	created atomic.Uint64
	reaped  atomic.Uint64

	idle time.Duration
	now  func() time.Time

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

func newSessionTable(idle time.Duration, now func() time.Time) *sessionTable {
	t := &sessionTable{
		m:    make(map[string]*session),
		idle: idle,
		now:  now,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go t.reapLoop()
	return t
}

// add registers a new recognition-stream session over st and returns it.
func (t *sessionTable) add(st *pipeline.Stream, window int) *session {
	return t.register(&session{st: st, window: window})
}

// addLive registers a live gesture session.
func (t *sessionTable) addLive(l *gesture.Live, window int) *session {
	return t.register(&session{live: l, window: window})
}

func (t *sessionTable) register(s *session) *session {
	s.id = "s" + strconv.FormatUint(t.nextID.Add(1), 10)
	s.touch(t.now())
	t.mu.Lock()
	t.m[s.id] = s
	t.mu.Unlock()
	t.created.Add(1)
	return s
}

// get looks a session up.
func (t *sessionTable) get(id string) (*session, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.m[id]
	return s, ok
}

// remove unlinks a session from the table (the caller already holds the
// session's mutex and has marked it closed).
func (t *sessionTable) remove(id string) {
	t.mu.Lock()
	delete(t.m, id)
	t.mu.Unlock()
}

// snapshot reports table occupancy for /statsz.
func (t *sessionTable) snapshot() SessionSnapshot {
	t.mu.Lock()
	open := len(t.m)
	t.mu.Unlock()
	return SessionSnapshot{
		Open:    open,
		Created: t.created.Load(),
		Reaped:  t.reaped.Load(),
	}
}

// close stops the reaper and ends every session: in-flight requests finish
// (we take each session's mutex), later ones see a closed session.
func (t *sessionTable) close() {
	t.stopOnce.Do(func() { close(t.stop) })
	<-t.done

	t.mu.Lock()
	open := make([]*session, 0, len(t.m))
	for _, s := range t.m {
		open = append(open, s)
	}
	t.m = make(map[string]*session)
	t.mu.Unlock()

	for _, s := range open {
		s.mu.Lock()
		if !s.closed {
			s.closed = true
			s.abandon()
		}
		s.mu.Unlock()
	}
}

// reapLoop abandons sessions that have been idle past the timeout. A session
// mid-request cannot be reaped: TryLock fails while the request holds the
// mutex, and the request refreshes lastUsed on the way out.
func (t *sessionTable) reapLoop() {
	defer close(t.done)
	interval := t.idle / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-tick.C:
			t.reapOnce()
		}
	}
}

// reapOnce scans for expired sessions.
func (t *sessionTable) reapOnce() {
	cutoff := t.now().Add(-t.idle).UnixNano()
	t.mu.Lock()
	expired := make([]*session, 0, 4)
	for _, s := range t.m {
		if s.lastUsed.Load() < cutoff {
			expired = append(expired, s)
		}
	}
	t.mu.Unlock()

	for _, s := range expired {
		if !s.mu.TryLock() {
			continue // mid-request: it will refresh lastUsed when done
		}
		if !s.closed && s.lastUsed.Load() < cutoff {
			s.closed = true
			s.abandon()
			t.remove(s.id)
			t.reaped.Add(1)
		}
		s.mu.Unlock()
	}
}
