package server_test

import (
	"context"
	"testing"

	"hdc/internal/pipeline"
	"hdc/internal/sax"
	"hdc/internal/sax/store"
	"hdc/internal/server"
	"hdc/internal/server/client"
	"hdc/internal/timeseries"
)

// TestStatszStore checks that a store-backed service reports the store's
// shape on /statsz — and that without Options.Store the field stays absent.
func TestStatszStore(t *testing.T) {
	enc, err := sax.NewEncoder(16, 5)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Create(t.TempDir()+"/s", enc, 128, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := make(timeseries.Series, 128)
	for i := range s {
		s[i] = float64(i % 17)
	}
	for i := 0; i < 3; i++ {
		if err := st.Add("ref", s); err != nil {
			t.Fatal(err)
		}
	}

	_, _, hs := testService(t, server.Options{Store: st}, pipeline.Config{Workers: 1})
	stats, err := client.New(hs.URL, nil).Statsz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Store == nil {
		t.Fatal("statsz store snapshot missing")
	}
	if stats.Store.Entries != 3 || stats.Store.Tail != 3 {
		t.Fatalf("store snapshot: %+v", stats.Store)
	}

	_, _, plain := testService(t, server.Options{}, pipeline.Config{Workers: 1})
	stats, err = client.New(plain.URL, nil).Statsz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Store != nil {
		t.Fatalf("store snapshot should be absent, got %+v", stats.Store)
	}
}
