// Package loadtest drives synthetic multi-operator traffic at a recognition
// service and aggregates throughput/latency. It is the single
// implementation behind `cmd/hdcserve -loadgen` and the E19 experiment
// generator, so the operator tool and the measured report cannot diverge.
package loadtest

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"hdc/internal/body"
	"hdc/internal/raster"
	"hdc/internal/scene"
	"hdc/internal/server"
	"hdc/internal/server/client"
)

// Config shapes one load run.
type Config struct {
	Operators int           // concurrent synthetic operators
	Batch     int           // frames per request
	Duration  time.Duration // run length
	Mix       string        // "batch" | "stream" | "mixed" (default mixed)
	Wire      string        // "raw" | "json" (default raw)
}

// Validate normalises defaults and rejects unknown modes.
func (c *Config) Validate() error {
	if c.Operators <= 0 || c.Batch <= 0 {
		return errors.New("loadtest: operators and batch must be positive")
	}
	if c.Mix == "" {
		c.Mix = "mixed"
	}
	if c.Wire == "" {
		c.Wire = "raw"
	}
	switch c.Mix {
	case "batch", "stream", "mixed":
	default:
		return fmt.Errorf("loadtest: unknown mix %q", c.Mix)
	}
	switch c.Wire {
	case "raw", "json":
	default:
		return fmt.Errorf("loadtest: unknown wire %q", c.Wire)
	}
	return nil
}

// Result is the merged outcome of one run. Latencies is sorted ascending.
type Result struct {
	Elapsed   time.Duration
	Requests  int
	Frames    int
	Failures  int
	Latencies []time.Duration
}

// FramesPerSec is the sustained recognition throughput.
func (r *Result) FramesPerSec() float64 { return float64(r.Frames) / r.Elapsed.Seconds() }

// ReqPerSec is the request rate.
func (r *Result) ReqPerSec() float64 { return float64(r.Requests) / r.Elapsed.Seconds() }

// PercentileMS returns the p-quantile (0 < p ≤ 1) request latency in
// milliseconds, from the exact sorted sample.
func (r *Result) PercentileMS(p float64) float64 {
	if len(r.Latencies) == 0 {
		return 0
	}
	idx := int(p*float64(len(r.Latencies))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(r.Latencies) {
		idx = len(r.Latencies) - 1
	}
	return float64(r.Latencies[idx].Nanoseconds()) / 1e6
}

// RenderFrames draws a load batch: the three signs cycled across the ±40°
// recognition envelope. Rendering happens once, outside the measurement.
func RenderFrames(batch int) ([]*raster.Gray, error) {
	rend := scene.NewRenderer(scene.Config{})
	signs := body.AllSigns()
	azimuths := []float64{0, -25, 25, -40, 40}
	frames := make([]*raster.Gray, batch)
	for i := range frames {
		v := scene.ReferenceView()
		v.AzimuthDeg = azimuths[i%len(azimuths)]
		f, err := rend.Render(signs[i%len(signs)], v, body.Options{}, nil)
		if err != nil {
			return nil, err
		}
		frames[i] = f
	}
	return frames, nil
}

// tally is one operator's lock-free accumulation.
type tally struct {
	requests, frames, failures int
	latencies                  []time.Duration
}

// Drive runs cfg.Operators concurrent operators against the service at base
// until cfg.Duration elapses, submitting the given frames each request.
// Under "mixed", even operators run session streams and odd operators run
// batches; "raw" submits a payload pre-encoded once per operator (the
// camera-ring-buffer pattern).
func Drive(ctx context.Context, base string, cfg Config, frames []*raster.Gray) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	tallies := make([]tally, cfg.Operators)
	deadline := time.Now().Add(cfg.Duration)
	var wg sync.WaitGroup
	start := time.Now()
	for op := 0; op < cfg.Operators; op++ {
		op := op
		wg.Add(1)
		go func() {
			defer wg.Done()
			driveOperator(ctx, base, cfg, op, frames, deadline, &tallies[op])
		}()
	}
	wg.Wait()

	res := Result{Elapsed: time.Since(start)}
	for i := range tallies {
		res.Requests += tallies[i].requests
		res.Frames += tallies[i].frames
		res.Failures += tallies[i].failures
		res.Latencies = append(res.Latencies, tallies[i].latencies...)
	}
	sort.Slice(res.Latencies, func(i, j int) bool { return res.Latencies[i] < res.Latencies[j] })
	return res, nil
}

// driveOperator is one operator's closed loop: request, wait, repeat.
func driveOperator(ctx context.Context, base string, cfg Config, op int, frames []*raster.Gray, deadline time.Time, tl *tally) {
	c := client.New(base, nil)
	c.JSONWire = cfg.Wire == "json"
	streaming := cfg.Mix == "stream" || (cfg.Mix == "mixed" && op%2 == 0)

	var fw, fh int
	var payload []byte
	if cfg.Wire == "raw" {
		var err error
		fw, fh, payload, err = client.EncodeRaw(frames)
		if err != nil {
			tl.failures++
			return
		}
	}

	var st *client.Stream
	if streaming {
		s, err := c.OpenStream(ctx)
		if err != nil {
			tl.failures++
			return
		}
		st = s
		defer func() { _ = st.Close(ctx) }()
	}

	for time.Now().Before(deadline) {
		reqStart := time.Now()
		var results []server.FrameResult
		var err error
		switch {
		case streaming && payload != nil:
			results, err = st.SubmitRaw(ctx, fw, fh, len(frames), payload)
		case streaming:
			results, err = st.Submit(ctx, frames...)
		case payload != nil:
			results, err = c.RawBatch(ctx, fw, fh, len(frames), payload)
		default:
			results, err = c.RecognizeBatch(ctx, frames)
		}
		tl.requests++
		tl.latencies = append(tl.latencies, time.Since(reqStart))
		if err != nil {
			tl.failures++
			continue
		}
		tl.frames += len(results)
		for _, r := range results {
			if r.Err != "" && r.Err != server.ErrValueNoSign {
				tl.failures++
				break
			}
		}
	}
}
