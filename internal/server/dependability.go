package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"hdc/internal/failpoint"
	"hdc/internal/raster"
	"hdc/internal/recognizer"
)

// dependability.go is the server's overload and fault story: per-request
// deadlines (X-Deadline-Ms → context), admission control (a hard in-flight
// frame cap answered with 429 + Retry-After), graceful degradation (under
// queue pressure or a read-only store, single/batch recognition answers from
// the cascade's stage-0 bound on the request goroutine, marked
// degraded:true), the liveness/readiness split (/livez answers 200 while the
// process serves at all — even draining — while /readyz reflects whether
// THIS replica should receive new work), and the debug-only /failpointz
// endpoint over internal/failpoint. See DESIGN.md §"The dependability
// layer".

// DeadlineHeader is the request header carrying the client's per-request
// deadline budget in milliseconds. The server turns it into a context
// deadline that bounds pipeline waits; work not finished in time answers
// per-frame with Err == "deadline".
const DeadlineHeader = "X-Deadline-Ms"

// errOverloaded answers requests refused by admission control. The 429
// carries Retry-After: 1 so a well-behaved client backs off instead of
// hammering a saturated pool.
var errOverloaded = errors.New("server: overloaded, retry later")

// requestContext derives the request's work context from DeadlineHeader. No
// header means the request's own context (cancelled on client disconnect);
// a malformed or non-positive value is a client error.
func requestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	h := r.Header.Get(DeadlineHeader)
	if h == "" {
		return r.Context(), func() {}, nil
	}
	ms, err := strconv.Atoi(h)
	if err != nil || ms <= 0 {
		return nil, nil, fmt.Errorf("server: bad %s %q", DeadlineHeader, h)
	}
	ctx, cancel := context.WithTimeout(r.Context(), time.Duration(ms)*time.Millisecond)
	return ctx, cancel, nil
}

// admit reserves n frames of admission budget, or reports the server full.
// The add-then-check shape keeps the counter honest under races: two
// requests can only both reject, never both slip past the cap.
func (s *Server) admit(n int) bool {
	max := int64(s.opts.MaxInflightFrames)
	if s.inflight.Add(int64(n)) > max {
		s.inflight.Add(int64(-n))
		s.rejected.Add(1)
		return false
	}
	return true
}

// unadmit returns n frames of admission budget.
func (s *Server) unadmit(n int) { s.inflight.Add(int64(-n)) }

// writeOverloaded answers a request refused by admission control.
func writeOverloaded(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusTooManyRequests, errOverloaded)
}

// overloaded reports whether the pool queue has crossed the degrade
// watermark — the signal that full-cascade answers are about to queue
// behind a backlog, so cheap degraded answers serve the users better.
func (s *Server) overloaded() bool {
	queued, capacity, started := s.sys.PoolQueue()
	if !started || capacity == 0 {
		return false
	}
	return float64(queued) >= s.opts.DegradeWatermark*float64(capacity)
}

// storeReadOnly reports whether the backing store has latched its sticky
// write-failure state (store.Store.ReadOnly). A read-only store still serves
// lookups, but it signals storage-layer distress; the serving layer degrades
// to stage-0 answers and drops out of readiness so traffic shifts to healthy
// replicas.
func (s *Server) storeReadOnly() bool {
	if s.opts.Store == nil {
		return false
	}
	ro, _ := s.opts.Store.ReadOnly()
	return ro
}

// shouldDegrade decides whether single/batch recognition answers degraded.
func (s *Server) shouldDegrade() bool {
	return s.overloaded() || s.storeReadOnly()
}

// recognizeDegraded answers frames from the stage-0 path on the request
// goroutine — no pool round trip — and recycles them. Results carry
// Degraded: true.
func (s *Server) recognizeDegraded(frames []*raster.Gray) []FrameResult {
	out := make([]FrameResult, len(frames))
	sc := recognizer.NewScratch()
	for i, f := range frames {
		res, err := s.sys.Rec.RecognizeDegradedWith(sc, f)
		s.framePool.Put(f)
		out[i] = resultToWire(res, err)
		out[i].Degraded = true
	}
	s.degraded.Add(uint64(len(frames)))
	return out
}

// handleLivez answers GET /livez: 200 for as long as the process can answer
// HTTP at all, including while draining — liveness is "don't restart me",
// not "route to me".
func (s *Server) handleLivez(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "live"})
}

// readyzResponse is the /readyz body: ready, or the reasons this replica
// should not receive new work.
type readyzResponse struct {
	Status  string   `json:"status"`
	Reasons []string `json:"reasons,omitempty"`
}

// handleReadyz answers GET /readyz: 503 with the reasons while this replica
// should not receive new traffic (draining, pool closed, read-only store,
// admission overload), 200 otherwise. Load balancers route on this; /livez
// decides process restarts.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	var reasons []string
	if s.draining.Load() {
		reasons = append(reasons, "draining")
	}
	if st, started := s.sys.PoolStats(); started && st.Closed {
		reasons = append(reasons, "pool-closed")
	}
	if s.storeReadOnly() {
		reasons = append(reasons, "store-read-only")
	}
	if s.overloaded() {
		reasons = append(reasons, "overloaded")
	}
	if len(reasons) > 0 {
		writeJSON(w, http.StatusServiceUnavailable, readyzResponse{Status: "unready", Reasons: reasons})
		return
	}
	writeJSON(w, http.StatusOK, readyzResponse{Status: "ready"})
}

// failpointzRequest is the POST /failpointz body: a spec arms the named
// failpoint, "off" (or empty) disarms it.
type failpointzRequest struct {
	Name string `json:"name"`
	Spec string `json:"spec"`
}

// handleFailpointz answers /failpointz, mounted only under
// Options.DebugFailpoints: GET lists the armed failpoints with hit/fire
// counters, POST arms or disarms one. It exists for chaos drills against a
// running replica; production configs leave it unmounted.
func (s *Server) handleFailpointz(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet {
		writeJSON(w, http.StatusOK, failpoint.List())
		return
	}
	var req failpointzRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("server: bad failpoint body: %w", err))
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusBadRequest, errors.New("server: failpoint name required"))
		return
	}
	if req.Spec == "" || req.Spec == "off" {
		failpoint.Disable(req.Name)
	} else if err := failpoint.Enable(req.Name, req.Spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, failpoint.List())
}
