package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"hdc/internal/body"
	"hdc/internal/failpoint"
	"hdc/internal/pipeline"
	"hdc/internal/sax"
	"hdc/internal/sax/store"
	"hdc/internal/server"
	"hdc/internal/server/client"
	"hdc/internal/timeseries"
)

// dependability_test.go drives the server's fault story end to end:
// deadline headers bounding requests, admission control shedding with 429,
// degraded stage-0 answers under a read-only store, the liveness/readiness
// split, and the debug /failpointz endpoint. Failpoints are process-global,
// so this package must not run these tests in parallel; each test disarms
// everything it armed.

// getJSON fetches url and decodes the body into out, returning the status.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestLivezReadyzSplit pins the contract: /livez stays 200 through a drain
// (the process is healthy, just not routable), /readyz and /healthz drop to
// 503.
func TestLivezReadyzSplit(t *testing.T) {
	_, srv, hs := testService(t, server.Options{}, pipeline.Config{Workers: 1})

	if code := getJSON(t, hs.URL+"/livez", nil); code != http.StatusOK {
		t.Fatalf("livez before drain: %d", code)
	}
	var ready struct {
		Status  string   `json:"status"`
		Reasons []string `json:"reasons"`
	}
	if code := getJSON(t, hs.URL+"/readyz", &ready); code != http.StatusOK || ready.Status != "ready" {
		t.Fatalf("readyz before drain: %d %+v", code, ready)
	}

	srv.Drain()
	if code := getJSON(t, hs.URL+"/livez", nil); code != http.StatusOK {
		t.Fatalf("livez while draining: %d", code)
	}
	if code := getJSON(t, hs.URL+"/readyz", &ready); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d", code)
	} else if len(ready.Reasons) != 1 || ready.Reasons[0] != "draining" {
		t.Fatalf("readyz reasons: %+v", ready)
	}
	if code := getJSON(t, hs.URL+"/healthz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d", code)
	}
}

// readOnlyStore builds a store and latches it read-only through the
// WAL-append failpoint.
func readOnlyStore(t *testing.T) *store.Store {
	t.Helper()
	enc, err := sax.NewEncoder(16, 5)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Create(t.TempDir()+"/s", enc, 128, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	s := make(timeseries.Series, 128)
	for i := range s {
		s[i] = float64(i % 17)
	}
	if err := failpoint.Enable(failpoint.StoreWALAppend, "error(enospc)"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disable(failpoint.StoreWALAppend)
	if err := st.Add("ref", s); err == nil {
		t.Fatal("Add under WAL failpoint succeeded")
	}
	if ro, _ := st.ReadOnly(); !ro {
		t.Fatal("store not read-only after WAL failure")
	}
	return st
}

// TestReadOnlyStoreDegrades pins the degradation path: with the backing
// store latched read-only, /readyz reports store-read-only, /statsz carries
// the latch, and recognition answers come from the stage-0 path marked
// degraded:true — still under the right label at the reference view.
func TestReadOnlyStoreDegrades(t *testing.T) {
	defer failpoint.DisableAll()
	st := readOnlyStore(t)
	sys, _, hs := testService(t, server.Options{Store: st}, pipeline.Config{Workers: 2})

	var ready struct {
		Reasons []string `json:"reasons"`
	}
	if code := getJSON(t, hs.URL+"/readyz", &ready); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with read-only store: %d", code)
	} else if len(ready.Reasons) != 1 || ready.Reasons[0] != "store-read-only" {
		t.Fatalf("readyz reasons: %+v", ready)
	}

	c := client.New(hs.URL, nil)
	frame := signFrames(t, sys, []body.Sign{body.SignNo})[0]
	res, err := c.Recognize(context.Background(), frame)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || !res.OK || res.Sign != "No" {
		t.Fatalf("degraded verdict: %+v", res)
	}
	if res.Confidence != 0 || res.RunnerUp != "" {
		t.Fatalf("degraded result carries full-path diagnostics: %+v", res)
	}

	stats, err := c.Statsz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Admission.StoreReadOnly || stats.Admission.DegradedFrames == 0 {
		t.Fatalf("admission snapshot: %+v", stats.Admission)
	}
	if stats.Store == nil || !stats.Store.ReadOnly {
		t.Fatalf("store snapshot: %+v", stats.Store)
	}
}

// TestAdmissionControl pins the 429 path: a batch over the in-flight cap is
// refused with Retry-After, a batch under it is served.
func TestAdmissionControl(t *testing.T) {
	sys, _, hs := testService(t,
		server.Options{MaxInflightFrames: 2}, pipeline.Config{Workers: 1})
	signs := signPattern(0, 4)
	frames := signFrames(t, sys, signs)

	c := client.New(hs.URL, nil)
	req, err := c.Post(context.Background(), "/v1/batch", frames)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap batch: %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	results, err := c.RecognizeBatch(context.Background(), frames[:2])
	if err != nil {
		t.Fatal(err)
	}
	checkOrdered(t, "under-cap", signs[:2], results)

	stats, err := c.Statsz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Admission.Rejected == 0 || stats.Admission.InflightFrames != 0 {
		t.Fatalf("admission snapshot: %+v", stats.Admission)
	}
}

// TestDeadlineHeaderBatch pins deadline propagation on /v1/batch: with the
// pool's workers stalled by a failpoint and a 60 ms budget, the request
// returns promptly and the unfinished frames answer "deadline". The frame
// pool must rebalance once the stall drains — the exactly-once recycling
// contract across the abandon path.
func TestDeadlineHeaderBatch(t *testing.T) {
	defer failpoint.DisableAll()
	sys, _, hs := testService(t, server.Options{}, pipeline.Config{Workers: 1, QueueDepth: 1, StreamWindow: 2})
	signs := signPattern(0, 6)
	frames := signFrames(t, sys, signs)

	if err := failpoint.Enable(failpoint.PipelineWorker, "delay(100ms)"); err != nil {
		t.Fatal(err)
	}
	c := client.New(hs.URL, nil)
	req, err := c.Post(context.Background(), "/v1/batch", frames)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(server.DeadlineHeader, "60")
	t0 := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Results []server.FrameResult `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deadline batch: %d", resp.StatusCode)
	}
	if el := time.Since(t0); el > 2*time.Second {
		t.Fatalf("deadline batch took %v", el)
	}
	deadlined := 0
	for _, r := range out.Results {
		if r.Err == server.ErrValueDeadline {
			deadlined++
		}
	}
	if deadlined == 0 {
		t.Fatalf("no frame answered deadline: %+v", out.Results)
	}
	failpoint.DisableAll()

	// The abandoned tail drains in the background; once it does, every pooled
	// frame must be back (gets == puts).
	deadline := time.Now().Add(5 * time.Second)
	for {
		stats, err := c.Statsz(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if stats.FramePool.Gets == stats.FramePool.Puts {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("frame pool unbalanced after drain: %+v", stats.FramePool)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStreamDeadlineSacrificesSession pins the ordered-stream deadline
// semantics: a stream cannot skip frames, so an expired budget abandons the
// session — the response's unfinished tail answers "deadline" and the
// session is gone afterwards.
func TestStreamDeadlineSacrificesSession(t *testing.T) {
	defer failpoint.DisableAll()
	sys, _, hs := testService(t, server.Options{}, pipeline.Config{Workers: 1, QueueDepth: 1, StreamWindow: 2})
	signs := signPattern(0, 6)
	frames := signFrames(t, sys, signs)

	c := client.New(hs.URL, nil)
	st, err := c.OpenStream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Enable(failpoint.PipelineWorker, "delay(100ms)"); err != nil {
		t.Fatal(err)
	}
	req, err := c.Post(context.Background(), "/v1/streams/"+st.ID+"/frames", frames)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(server.DeadlineHeader, "60")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Results []server.FrameResult `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream deadline: %d", resp.StatusCode)
	}
	if out.Results[len(out.Results)-1].Err != server.ErrValueDeadline {
		t.Fatalf("tail not deadline: %+v", out.Results)
	}
	failpoint.DisableAll()

	// The sacrificed session must be gone.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(hs.URL + "/v1/streams/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sacrificed session still answers %d", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
	_ = sys
}

// TestFailpointzEndpoint pins the debug endpoint: absent by default, and
// when mounted it arms/disarms points and lists their counters.
func TestFailpointzEndpoint(t *testing.T) {
	defer failpoint.DisableAll()
	_, _, plain := testService(t, server.Options{}, pipeline.Config{Workers: 1})
	if code := getJSON(t, plain.URL+"/failpointz", nil); code != http.StatusNotFound {
		t.Fatalf("failpointz mounted without DebugFailpoints: %d", code)
	}

	sys, _, hs := testService(t, server.Options{DebugFailpoints: true}, pipeline.Config{Workers: 1})
	body_, _ := json.Marshal(map[string]string{
		"name": failpoint.ServerDecode, "spec": "error(injected decode fault)",
	})
	resp, err := http.Post(hs.URL+"/failpointz", "application/json", bytes.NewReader(body_))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("arming via failpointz: %d", resp.StatusCode)
	}

	c := client.New(hs.URL, nil)
	frame := signFrames(t, sys, []body.Sign{body.SignNo})[0]
	if _, err := c.Recognize(context.Background(), frame); err == nil {
		t.Fatal("recognize succeeded under decode failpoint")
	}

	var points []failpoint.Status
	if code := getJSON(t, hs.URL+"/failpointz", &points); code != http.StatusOK {
		t.Fatalf("listing failpoints: %d", code)
	}
	found := false
	for _, p := range points {
		if p.Name == failpoint.ServerDecode && p.Fired > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("decode failpoint not listed as fired: %+v", points)
	}

	body_, _ = json.Marshal(map[string]string{"name": failpoint.ServerDecode, "spec": "off"})
	resp, err = http.Post(hs.URL+"/failpointz", "application/json", bytes.NewReader(body_))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if res, err := c.Recognize(context.Background(), frame); err != nil || !res.OK {
		t.Fatalf("recognize after disarm: %+v %v", res, err)
	}
}
