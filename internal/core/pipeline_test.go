package core

import (
	"errors"
	"testing"

	"hdc/internal/body"
	"hdc/internal/pipeline"
	"hdc/internal/raster"
	"hdc/internal/scene"
)

// TestSystemStreamingRoundTrip drives the façade-level streaming API: a
// stream and a batch through the system's shared pool.
func TestSystemStreamingRoundTrip(t *testing.T) {
	sys, err := NewSystem(WithSceneConfig(scene.Config{Width: 128, Height: 128}),
		WithPipelineConfig(pipeline.Config{Workers: 2}))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	frames := make([]*raster.Gray, 4)
	for i := range frames {
		v := scene.View{AltitudeM: 5, DistanceM: 3, AzimuthDeg: float64(i * 10)}
		f, err := sys.Rend.Render(body.SignYes, v, body.Options{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		frames[i] = f
	}

	st, err := sys.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if err := st.Submit(f); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	n := uint64(0)
	for r := range st.Results() {
		if r.Seq != n {
			t.Fatalf("stream out of order: %d, want %d", r.Seq, n)
		}
		n++
	}
	if n != uint64(len(frames)) {
		t.Fatalf("stream delivered %d/%d", n, len(frames))
	}

	results, errs, err := sys.RecognizeBatch(frames)
	if err != nil {
		t.Fatal(err)
	}
	for i := range frames {
		if errs[i] == nil && !results[i].OK {
			t.Fatalf("frame %d: nil error but not OK", i)
		}
	}
}

// TestSystemCloseBeforeUse pins the shutdown contract: closing a system
// that never streamed must make later streaming calls fail cleanly rather
// than start (or dereference) a pool on a closed system.
func TestSystemCloseBeforeUse(t *testing.T) {
	sys, err := NewSystem(WithSceneConfig(scene.Config{Width: 128, Height: 128}))
	if err != nil {
		t.Fatal(err)
	}
	sys.Close()
	if _, err := sys.NewStream(); !errors.Is(err, pipeline.ErrClosed) {
		t.Fatalf("NewStream after early Close: %v", err)
	}
	if _, _, err := sys.RecognizeBatch(nil); !errors.Is(err, pipeline.ErrClosed) {
		t.Fatalf("RecognizeBatch after early Close: %v", err)
	}
	sys.Close() // still idempotent
}
