package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"hdc/internal/body"
	"hdc/internal/geom"
	"hdc/internal/human"
	"hdc/internal/pipeline"
	"hdc/internal/protocol"
	"hdc/internal/raster"
	"hdc/internal/recognizer"
	"hdc/internal/scene"
)

// shared_test.go covers the fleet-shared pool surface: WithSharedPipeline
// attachment lifecycle, per-system stats attribution through the System
// façade, and conversation perception routed through the pool.

// newSharedPool builds a small pool for tests.
func newSharedPool(t testing.TB) *pipeline.Pipeline {
	t.Helper()
	pool, err := NewSharedPool(
		WithSceneConfig(scene.Config{Width: 128, Height: 128}),
		WithPipelineConfig(pipeline.Config{Workers: 2, QueueDepth: 2, StreamWindow: 2}),
	)
	if err != nil {
		t.Fatal(err)
	}
	return pool
}

// TestSharedPipelineLifecycle attaches three systems to one pool, drives
// attributed traffic through each and closes them in order: the pool must
// survive every close but the last, and refuse attachment afterwards.
func TestSharedPipelineLifecycle(t *testing.T) {
	pool := newSharedPool(t)
	systems := make([]*System, 3)
	for i := range systems {
		systems[i] = newSystem(t,
			WithSceneConfig(scene.Config{Width: 128, Height: 128}),
			WithSharedPipeline(pool),
			WithPoolLabel(fmt.Sprintf("drone-%d", i)),
		)
	}

	// Attachment happened inside NewSystem: the count is visible before any
	// streaming call.
	if s := pool.Stats(); s.Attached != 3 {
		t.Fatalf("attached=%d after 3 NewSystems, want 3", s.Attached)
	}
	for i, sys := range systems {
		stats, started := sys.PoolStats()
		if !started {
			t.Fatalf("system %d: shared pool not visible from construction", i)
		}
		if stats.Attached != 3 {
			t.Fatalf("system %d sees attached=%d", i, stats.Attached)
		}
	}

	frame, err := systems[0].Rend.Render(body.SignYes, scene.ReferenceView(), body.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, sys := range systems {
		results, errs, err := sys.RecognizeBatch([]*raster.Gray{frame, frame})
		if err != nil {
			t.Fatalf("system %d batch: %v", i, err)
		}
		for j := range errs {
			if errs[j] != nil {
				t.Fatalf("system %d frame %d: %v", i, j, errs[j])
			}
			if !results[j].OK {
				t.Fatalf("system %d frame %d: not OK", i, j)
			}
		}
	}
	stats := pool.Stats()
	if len(stats.Owners) != 3 {
		t.Fatalf("owners: %+v", stats.Owners)
	}
	for i, o := range stats.Owners {
		if o.Label != fmt.Sprintf("drone-%d", i) {
			t.Fatalf("owner %d label %q", i, o.Label)
		}
		if o.Frames != 2 {
			t.Fatalf("owner %q frames=%d, want 2", o.Label, o.Frames)
		}
	}

	systems[0].Close()
	systems[0].Close() // idempotent
	systems[1].Close()
	if s := pool.Stats(); s.Closed || s.Attached != 1 {
		t.Fatalf("pool after 2/3 closes: %+v", s)
	}
	// The survivor still recognises.
	if _, errs, err := systems[2].RecognizeBatch([]*raster.Gray{frame}); err != nil || errs[0] != nil {
		t.Fatalf("survivor batch: %v %v", err, errs)
	}
	systems[2].Close()
	if s := pool.Stats(); !s.Closed {
		t.Fatal("pool open after last system closed")
	}

	// Constructing a system against the drained pool fails cleanly.
	if _, err := NewSystem(WithSharedPipeline(pool)); !errors.Is(err, pipeline.ErrClosed) {
		t.Fatalf("NewSystem on closed pool: %v, want ErrClosed", err)
	}
}

// TestSharedConversePerceivesThroughPool runs full Fig 3 conversations on
// systems attached to one shared pool and checks (a) outcomes match the
// single-system behaviour and (b) the perception frames are attributed to
// each drone's owner — proof the conversation loop recognises on the fleet
// pool, not on a private code path.
func TestSharedConversePerceivesThroughPool(t *testing.T) {
	pool := newSharedPool(t)
	const drones = 2
	granted := 0
	systems := make([]*System, drones)
	for i := range systems {
		systems[i] = newSystem(t,
			WithSeed(int64(i+1)),
			WithHome(geom.V3(float64(-8*i), -20, 0)),
			WithSceneConfig(scene.Config{Width: 128, Height: 128}),
			WithSharedPipeline(pool),
			WithPoolLabel(fmt.Sprintf("drone-%d", i)),
		)
	}
	var wg sync.WaitGroup
	outcomes := make([]protocol.Outcome, drones)
	errs := make([]error, drones)
	for i, sys := range systems {
		i, sys := i, sys
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(7 * (i + 1))))
			c, err := human.New("sup", human.RoleSupervisor, geom.V2(float64(20*i), 0), rng)
			if err != nil {
				errs[i] = err
				return
			}
			res, err := sys.Converse(c)
			if err != nil {
				errs[i] = err
				return
			}
			outcomes[i] = res.Outcome
		}()
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("drone %d: %v", i, errs[i])
		}
		if outcomes[i] == protocol.OutcomeGranted {
			granted++
		}
	}

	stats := pool.Stats()
	if len(stats.Owners) != drones {
		t.Fatalf("owners: %+v", stats.Owners)
	}
	for _, o := range stats.Owners {
		if o.Frames == 0 {
			t.Fatalf("owner %q perceived no frames through the pool — conversation bypassed it", o.Label)
		}
		if o.IngestAccepted == 0 {
			t.Fatalf("owner %q has no ingest-ring traffic — perception not fronted by a Source", o.Label)
		}
	}
	if granted == 0 {
		t.Fatal("no conversation granted across 2 supervisor negotiations")
	}
	for _, sys := range systems {
		sys.Close()
	}
	if s := pool.Stats(); !s.Closed {
		t.Fatal("pool open after fleet closed")
	}
}

// TestPerceptionDeadlineShedsAtOwnRing pins the fleet degradation contract
// end to end: with the pool's only worker wedged and a perception deadline
// set, a drone's conversations keep terminating — every perception gives its
// frame up at the deadline, the backlog is shed at the drone's own ring
// (owner-attributed), and once the worker is released every pooled frame
// buffer comes back (no leak), with late results of abandoned frames
// discarded silently.
func TestPerceptionDeadlineShedsAtOwnRing(t *testing.T) {
	pool, err := NewSharedPool(
		WithSceneConfig(scene.Config{Width: 128, Height: 128}),
		WithPipelineConfig(pipeline.Config{Workers: 1, QueueDepth: 1, StreamWindow: 2}),
	)
	if err != nil {
		t.Fatal(err)
	}
	sys := newSystem(t,
		WithSeed(3),
		WithSceneConfig(scene.Config{Width: 128, Height: 128}),
		WithSharedPipeline(pool),
		WithPoolLabel("drone-wedged"),
		WithPerceptionDeadline(20*time.Millisecond),
	)

	// Wedge the single worker: a proc stream whose frame blocks until
	// released.
	release := make(chan struct{})
	blocker, err := pool.NewProcStream(func(sc *recognizer.Scratch, seq uint64, f *raster.Gray) (recognizer.Result, error) {
		<-release
		return recognizer.Result{}, recognizer.ErrNoSign
	})
	if err != nil {
		t.Fatal(err)
	}
	wedgeFrame, err := sys.Rend.Render(body.SignYes, scene.ReferenceView(), body.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := blocker.Submit(wedgeFrame); err != nil {
		t.Fatal(err)
	}

	// Conversations against a responsive supervisor: every perception times
	// out, yet each conversation terminates (the protocol's own retry and
	// timeout machinery decides the outcome).
	rng := rand.New(rand.NewSource(9))
	for round := 0; round < 3; round++ {
		c, err := human.New("sup", human.RoleSupervisor, geom.V2(0, float64(4*round)), rng)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Converse(c); err != nil {
			t.Fatalf("round %d: conversation failed hard under a wedged pool: %v", round, err)
		}
	}

	owner := sys.Owner().Stats()
	if owner.IngestAccepted == 0 {
		t.Fatal("no perception frames entered the ring")
	}
	if owner.IngestDropped == 0 {
		t.Fatalf("wedged pool + deadline shed nothing at the drone's ring: %+v", owner)
	}

	// Release the worker, drain everything, and account for every pooled
	// frame buffer: abandoned frames' late results must have been recycled.
	close(release)
	blocker.Close()
	for range blocker.Results() {
	}
	sys.Close()
	// Late results of abandoned frames recycle on pool goroutines after
	// Close returns, so the balance is eventual — poll instead of racing it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		gets, puts := sys.framePool.Stats()
		if gets == puts {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("frame pool leak: %d gets vs %d puts", gets, puts)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSharedCloseDuringConversations drains the shared pool while other
// systems are mid-conversation: survivors must finish or abort with a clean
// pipeline-closed error, never hang or panic. (Force-close here stands in
// for process shutdown racing a running fleet.)
func TestSharedCloseDuringConversations(t *testing.T) {
	pool := newSharedPool(t)
	const drones = 3
	systems := make([]*System, drones)
	for i := range systems {
		systems[i] = newSystem(t,
			WithSeed(int64(i+1)),
			WithSceneConfig(scene.Config{Width: 128, Height: 128}),
			WithSharedPipeline(pool),
			WithPoolLabel(fmt.Sprintf("drone-%d", i)),
		)
	}
	var wg sync.WaitGroup
	for i, sys := range systems {
		i, sys := i, sys
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i + 1)))
			for round := 0; round < 4; round++ {
				c, err := human.New("w", human.RoleWorker, geom.V2(float64(5*i), float64(5*round)), rng)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := sys.Converse(c); err != nil {
					if !errors.Is(err, pipeline.ErrClosed) &&
						!errors.Is(err, pipeline.ErrSourceClosed) &&
						!errors.Is(err, pipeline.ErrStreamClosed) {
						t.Errorf("drone %d: %v", i, err)
					}
					return
				}
			}
		}()
	}
	pool.Close() // force-close mid-traffic
	wg.Wait()
	for _, sys := range systems {
		sys.Close() // detach after force-close must be a no-op
	}
}
