package core

import (
	"math/rand"
	"testing"

	"hdc/internal/flight"
	"hdc/internal/geom"
	"hdc/internal/human"
	"hdc/internal/ledring"
	"hdc/internal/protocol"
)

func newSystem(t testing.TB, opts ...Option) *System {
	t.Helper()
	s, err := NewSystem(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSystemDefaults(t *testing.T) {
	s := newSystem(t)
	if s.Agent == nil || s.Rec == nil || s.Rend == nil || s.Engine == nil {
		t.Fatal("missing subsystem")
	}
	if s.Rec.Database().Len() == 0 {
		t.Fatal("references not built")
	}
	if s.Agent.Ring.Mode() != ledring.ModeDanger {
		t.Fatal("ring must boot in danger mode")
	}
}

func TestEnsureAirborne(t *testing.T) {
	s := newSystem(t)
	if err := s.EnsureAirborne(); err != nil {
		t.Fatal(err)
	}
	if s.Agent.D.S.Pos.Z < 3 {
		t.Fatalf("not airborne: %v", s.Agent.D.S.Pos)
	}
	// Idempotent.
	if err := s.EnsureAirborne(); err != nil {
		t.Fatal(err)
	}
}

func TestConverseFullStackSupervisor(t *testing.T) {
	// End-to-end Fig 3: flight patterns, rendered frames, SAX recognition,
	// negotiated outcome — across several seeds the supervisor mostly
	// grants, and every grant follows a perceived Yes.
	granted, denied, other := 0, 0, 0
	for seed := int64(1); seed <= 10; seed++ {
		s := newSystem(t, WithSeed(seed), WithHome(geom.V3(0, -20, 0)))
		rng := rand.New(rand.NewSource(seed * 7))
		c, err := human.New("sup", human.RoleSupervisor, geom.V2(0, 0), rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Converse(c)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		switch res.Outcome {
		case protocol.OutcomeGranted:
			granted++
		case protocol.OutcomeDenied:
			denied++
		default:
			other++
		}
	}
	if granted < 5 {
		t.Fatalf("granted %d/10 (denied %d, other %d) — full stack too lossy", granted, denied, other)
	}
}

func TestConverseNilHuman(t *testing.T) {
	s := newSystem(t)
	if _, err := s.Converse(nil); err == nil {
		t.Fatal("nil collaborator should fail")
	}
}

func TestStandoffPointGeometry(t *testing.T) {
	s := newSystem(t, WithHome(geom.V3(0, -30, 0)))
	rng := rand.New(rand.NewSource(2))
	c, _ := human.New("w", human.RoleWorker, geom.V2(0, 0), rng)
	p := s.StandoffPoint(c)
	if d := p.XY().Dist(c.Pos); d < 2.9 || d > 3.1 {
		t.Fatalf("standoff distance %v, want ≈3", d)
	}
	if p.Z != 5 {
		t.Fatalf("standoff altitude %v, want 5", p.Z)
	}
}

func TestWithNegotiationGeometry(t *testing.T) {
	s := newSystem(t, WithNegotiationGeometry(4, 6))
	rng := rand.New(rand.NewSource(3))
	c, _ := human.New("w", human.RoleWorker, geom.V2(10, 10), rng)
	p := s.StandoffPoint(c)
	if d := p.XY().Dist(c.Pos); d < 3.9 || d > 4.1 {
		t.Fatalf("standoff distance %v, want ≈4", d)
	}
	if p.Z != 6 {
		t.Fatalf("altitude %v, want 6", p.Z)
	}
}

func TestConverseRespectsSafetyAbort(t *testing.T) {
	// A tiny battery forces a safety abort mid-conversation; the outcome
	// must be Aborted with the danger display raised, never an entry.
	s := newSystem(t,
		WithSeed(5),
		WithHome(geom.V3(0, -40, 0)),
	)
	// Drain the battery almost fully before conversing.
	if err := s.EnsureAirborne(); err != nil {
		t.Fatal(err)
	}
	for s.Agent.BatteryFrac() > 0.16 {
		if err := s.Agent.Hover(60); err != nil {
			break
		}
	}
	rng := rand.New(rand.NewSource(5))
	c, _ := human.New("sup", human.RoleSupervisor, geom.V2(0, 0), rng)
	res, err := s.Converse(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != protocol.OutcomeAborted {
		t.Fatalf("outcome = %v, want Aborted", res.Outcome)
	}
	if s.Agent.Ring.Mode() != ledring.ModeDanger {
		t.Fatal("danger display missing after abort")
	}
}

func TestSystemDeterministicBySeed(t *testing.T) {
	run := func() protocol.Outcome {
		s := newSystem(t, WithSeed(11), WithHome(geom.V3(0, -20, 0)))
		rng := rand.New(rand.NewSource(11))
		c, _ := human.New("w", human.RoleWorker, geom.V2(0, 0), rng)
		res, err := s.Converse(c)
		if err != nil {
			t.Fatal(err)
		}
		return res.Outcome
	}
	if run() != run() {
		t.Fatal("same seed produced different outcomes")
	}
}

func TestWithWind(t *testing.T) {
	s := newSystem(t, WithWind(geom.V2(1, 0), 0.3), WithSeed(4))
	if s.Agent.D.Wind == nil {
		t.Fatal("wind not installed")
	}
	if err := s.EnsureAirborne(); err != nil {
		t.Fatal(err)
	}
	// A short cruise still succeeds under wind.
	if _, err := s.Agent.FlyPattern(flight.PatternCruise, geom.V3(10, 0, 0)); err != nil {
		t.Fatal(err)
	}
}
