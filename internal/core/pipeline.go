package core

import (
	"hdc/internal/pipeline"
	"hdc/internal/raster"
	"hdc/internal/recognizer"
)

// pipeline.go exposes the streaming recognition service on the System
// façade: many concurrent frame sources (multi-camera ingest, fleet drones,
// remote clients) share one worker pool over the system's recogniser.

// ensurePipeline lazily starts the shared worker pool. The recogniser's
// references were built in NewSystem, so the pool is safe to start at any
// point afterwards. The pointer is published atomically so observers
// (PoolStats, Close) can read it without consuming the start-once.
func (s *System) ensurePipeline() (*pipeline.Pipeline, error) {
	s.pipeOnce.Do(func() {
		p, err := pipeline.New(s.Rec, s.pipeCfg)
		if err != nil {
			s.pipeErr = err
			return
		}
		s.pipe.Store(p)
	})
	if s.pipeErr != nil {
		return nil, s.pipeErr
	}
	return s.pipe.Load(), nil
}

// NewStream opens an ordered recognition stream on the system's shared
// worker pool: frames submitted to it come back as recognizer.Results in
// submission order on the stream's Results channel, while the pool
// recognises frames from all streams in parallel. The first call starts the
// pool (size configured with WithPipelineConfig, default NumCPU workers).
func (s *System) NewStream() (*pipeline.Stream, error) {
	p, err := s.ensurePipeline()
	if err != nil {
		return nil, err
	}
	return p.NewStream()
}

// NewProcStream opens an ordered stream whose frames run a custom per-frame
// stage (pipeline.Proc) on the shared pool's workers instead of sign
// recognition — the hook the gesture recogniser uses to share the system's
// recognition capacity. It satisfies gesture.StreamPool.
func (s *System) NewProcStream(proc pipeline.Proc) (*pipeline.Stream, error) {
	p, err := s.ensurePipeline()
	if err != nil {
		return nil, err
	}
	return p.NewProcStream(proc)
}

// RecognizeBatch recognises a batch of frames on the shared worker pool and
// returns the results in input order with one error slot per frame (nil for
// an accepted sign, recognizer.ErrNoSign or a vision error otherwise).
func (s *System) RecognizeBatch(frames []*raster.Gray) ([]recognizer.Result, []error, error) {
	p, err := s.ensurePipeline()
	if err != nil {
		return nil, nil, err
	}
	return p.RecognizeBatch(frames)
}

// PoolStats reports the shared worker pool's occupancy without starting it:
// started is false (and the snapshot zero) when no streaming call has run
// yet. It is the load signal the network service layer serves on /statsz.
func (s *System) PoolStats() (stats pipeline.Stats, started bool) {
	if p := s.pipe.Load(); p != nil {
		return p.Stats(), true
	}
	return pipeline.Stats{}, false
}

// Close shuts down the system's worker pool, if one was started. Streams
// still open deliver their in-flight results and then close. Close is
// idempotent; a System that never streamed needs no Close, and streaming
// calls after Close fail with pipeline.ErrClosed.
func (s *System) Close() {
	// Pool never started: consume the once so a later NewStream reports
	// closed instead of starting a pool on a closed system.
	s.pipeOnce.Do(func() { s.pipeErr = pipeline.ErrClosed })
	if p := s.pipe.Load(); p != nil {
		p.Close()
	}
}
