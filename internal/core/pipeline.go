package core

import (
	"context"

	"hdc/internal/pipeline"
	"hdc/internal/raster"
	"hdc/internal/recognizer"
	"hdc/internal/trace"
)

// pipeline.go exposes the streaming recognition service on the System
// façade: many concurrent frame sources (multi-camera ingest, fleet drones,
// remote clients) share one worker pool over the system's recogniser. A
// system either owns its pool (the default: lazily started on first use) or
// attaches to a fleet-shared one (WithSharedPipeline); in both cases every
// stream the system opens is attributed to the system's pipeline.Owner, so
// PoolStats can break pool traffic down per attached system.

// ensurePipeline lazily resolves the system's pool and attachment: for a
// private system it starts the pool on first use; for a shared system it
// attaches to the externally built pool (NewSystem already did this
// eagerly). The recogniser's references were built in NewSystem, so the pool
// is safe to start at any point afterwards. The pointers are published
// atomically so observers (PoolStats, Close) can read them without consuming
// the start-once.
func (s *System) ensurePipeline() (*pipeline.Owner, error) {
	s.pipeOnce.Do(func() {
		p := s.sharedPipe
		if p == nil {
			var err error
			p, err = pipeline.New(s.Rec, s.pipeCfg)
			if err != nil {
				s.pipeErr = err
				return
			}
		}
		o, err := p.Attach(s.poolLabel)
		if err != nil {
			// Shared pool already closed underneath us; a private pool this
			// goroutine just built cannot refuse its first attach.
			s.pipeErr = err
			return
		}
		s.pipe.Store(p)
		s.owner.Store(o)
	})
	if s.pipeErr != nil {
		return nil, s.pipeErr
	}
	return s.owner.Load(), nil
}

// NewStream opens an ordered recognition stream on the system's worker pool:
// frames submitted to it come back as recognizer.Results in submission order
// on the stream's Results channel, while the pool recognises frames from all
// streams in parallel. The first call starts a private system's pool (sized
// with WithPipelineConfig, default NumCPU workers); on a shared system it
// draws on the fleet pool, attributed to this system.
func (s *System) NewStream() (*pipeline.Stream, error) {
	o, err := s.ensurePipeline()
	if err != nil {
		return nil, err
	}
	return o.NewStream()
}

// NewProcStream opens an ordered stream whose frames run a custom per-frame
// stage (pipeline.Proc) on the shared pool's workers instead of sign
// recognition — the hook the gesture recogniser uses to share the system's
// recognition capacity. It satisfies gesture.StreamPool.
func (s *System) NewProcStream(proc pipeline.Proc) (*pipeline.Stream, error) {
	o, err := s.ensurePipeline()
	if err != nil {
		return nil, err
	}
	return o.NewProcStream(proc)
}

// RecognizeBatch recognises a batch of frames on the system's worker pool
// and returns the results in input order with one error slot per frame (nil
// for an accepted sign, recognizer.ErrNoSign or a vision error otherwise).
func (s *System) RecognizeBatch(frames []*raster.Gray) ([]recognizer.Result, []error, error) {
	o, err := s.ensurePipeline()
	if err != nil {
		return nil, nil, err
	}
	return o.RecognizeBatch(frames)
}

// RecognizeBatchContext is RecognizeBatch with a deadline and pooled-frame
// recycling — see pipeline.Pipeline.RecognizeBatchContext for the frame
// ownership contract (on a nil top-level error the call owns every frame;
// recycle fires exactly once per frame).
func (s *System) RecognizeBatchContext(ctx context.Context, frames []*raster.Gray, recycle func(*raster.Gray)) ([]recognizer.Result, []error, error) {
	o, err := s.ensurePipeline()
	if err != nil {
		return nil, nil, err
	}
	return o.RecognizeBatchContext(ctx, frames, recycle)
}

// PoolQueue reports the worker pool's shared-queue occupancy without
// starting it — the cheap admission-control signal (PoolStats allocates an
// owner snapshot; this is two channel reads).
func (s *System) PoolQueue() (queued, capacity int, started bool) {
	if p := s.pipe.Load(); p != nil {
		queued, capacity = p.QueueDepth()
		return queued, capacity, true
	}
	return 0, 0, false
}

// PoolStats reports the worker pool's occupancy without starting it: started
// is false (and the snapshot zero) when no streaming call has run yet on a
// private system. On a shared system the pool was attached in NewSystem, so
// started is true from construction and the snapshot covers the whole
// fleet's traffic — Stats.Owners carries the per-system breakdown. It is the
// load signal the network service layer serves on /statsz.
func (s *System) PoolStats() (stats pipeline.Stats, started bool) {
	if p := s.pipe.Load(); p != nil {
		return p.Stats(), true
	}
	return pipeline.Stats{}, false
}

// Owner returns the system's attachment handle on its pool, or nil if no
// streaming call has started one yet. Fleet experiments read per-drone
// counters (frames recognised, ingest sheds) from it.
func (s *System) Owner() *pipeline.Owner { return s.owner.Load() }

// Pool resolves and returns the system's worker pool, starting a private
// system's pool on first use exactly like NewStream. Graph builders
// (internal/graph) attach their own per-node owners to it, so graph stages
// and the system's classic streams share workers and show up side by side
// in PoolStats.Owners.
func (s *System) Pool() (*pipeline.Pipeline, error) {
	if _, err := s.ensurePipeline(); err != nil {
		return nil, err
	}
	return s.pipe.Load(), nil
}

// Tracer returns the worker pool's per-frame flight recorder, or nil if no
// streaming call has started the pool yet. On a shared pool the tracer is
// fleet-wide — frames carry their owner's label — which is exactly what
// /tracez wants to serve.
func (s *System) Tracer() *trace.Tracer {
	if p := s.pipe.Load(); p != nil {
		return p.Tracer()
	}
	return nil
}

// Close detaches the system from its worker pool, if one was resolved. On a
// private system that drains the pool (this system is its only owner); on a
// shared system the pool keeps serving the other attached systems and only
// the last Close drains it. Streams still open deliver their in-flight
// results and then close. Close is idempotent; a private System that never
// streamed needs no Close, and streaming calls after Close fail with
// pipeline.ErrClosed.
func (s *System) Close() {
	// Pool never resolved: consume the once so a later NewStream reports
	// closed instead of starting a pool on a closed system.
	s.pipeOnce.Do(func() { s.pipeErr = pipeline.ErrClosed })
	s.closeFeed()
	if o := s.owner.Load(); o != nil {
		o.Close()
	}
}
