// Package core is the public façade of the hdc library: it assembles the
// drone agent (flight + all-round light + safety), the synthetic camera,
// the SAX sign recogniser and the Fig 3 negotiation protocol into one
// System, configured through functional options. Examples and the mission
// layer build on this package; everything underneath remains importable for
// fine-grained use.
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"hdc/internal/drone"
	"hdc/internal/flight"
	"hdc/internal/geom"
	"hdc/internal/human"
	"hdc/internal/ledring"
	"hdc/internal/pipeline"
	"hdc/internal/protocol"
	"hdc/internal/raster"
	"hdc/internal/recognizer"
	"hdc/internal/scene"
	"hdc/internal/telemetry"
)

// config collects option state.
type config struct {
	seed        int64
	flight      flight.Params
	ring        ledring.Options
	safety      drone.SafetyLimits
	sceneCfg    scene.Config
	recCfg      recognizer.Config
	protoCfg    protocol.Config
	pipeCfg     pipeline.Config
	sharedPipe  *pipeline.Pipeline // non-nil: attach instead of owning a pool
	poolLabel   string             // stats attribution name on the shared pool
	perceiveDdl time.Duration      // pooled-perception deadline (0: wait)
	home        geom.Vec3
	standoff    float64 // negotiation stand-off distance (m)
	negotAlt    float64 // negotiation altitude (m)
	windGust    float64
	windMean    geom.Vec2
	windSet     bool
}

// Option configures NewSystem.
type Option func(*config)

// WithSeed fixes the random seed (default 1).
func WithSeed(seed int64) Option { return func(c *config) { c.seed = seed } }

// WithFlightParams overrides the airframe limits.
func WithFlightParams(p flight.Params) Option { return func(c *config) { c.flight = p } }

// WithRingOptions overrides the all-round-light configuration.
func WithRingOptions(o ledring.Options) Option { return func(c *config) { c.ring = o } }

// WithSafetyLimits overrides the safety monitor limits.
func WithSafetyLimits(s drone.SafetyLimits) Option { return func(c *config) { c.safety = s } }

// WithSceneConfig overrides the synthetic camera.
func WithSceneConfig(s scene.Config) Option { return func(c *config) { c.sceneCfg = s } }

// WithRecognizerConfig overrides the SAX pipeline parameters.
func WithRecognizerConfig(r recognizer.Config) Option { return func(c *config) { c.recCfg = r } }

// WithProtocolConfig overrides negotiation timeouts/retries.
func WithProtocolConfig(p protocol.Config) Option { return func(c *config) { c.protoCfg = p } }

// WithPipelineConfig sizes the streaming recognition worker pool behind
// NewStream/RecognizeBatch (default: NumCPU workers). It is ignored when the
// system attaches to a shared pool via WithSharedPipeline — the pool was
// sized by whoever built it.
func WithPipelineConfig(p pipeline.Config) Option { return func(c *config) { c.pipeCfg = p } }

// WithSharedPipeline attaches the system to an externally built worker pool
// (NewSharedPool, or another system's exported pipeline) instead of starting
// a private one. Build the pool with the same scene and recogniser options
// as the systems that attach to it: the pool recognises against its own
// reference database, so a resolution or tuning mismatch between a drone's
// camera and the pool silently degrades recognition. The attachment is made
// inside NewSystem — so the pool's reference count always matches the set of
// constructed systems — and NewSystem fails with pipeline.ErrClosed if the
// pool has already shut down.
// The system's streaming calls and its conversation perception all draw on
// the shared pool; System.Close detaches, and only the last attached
// system's Close drains the pool. This is how a mission.Fleet makes
// recognition capacity a fleet-level resource rather than a per-drone one.
func WithSharedPipeline(p *pipeline.Pipeline) Option {
	return func(c *config) { c.sharedPipe = p }
}

// WithPoolLabel names this system in the pool's per-owner statistics
// (pipeline.Stats.Owners) — a drone ID, a server name. Unlabelled systems
// are assigned "owner-N" in attach order.
func WithPoolLabel(label string) Option { return func(c *config) { c.poolLabel = label } }

// WithPerceptionDeadline bounds (in wall-clock time) how long a shared
// system's conversation perception waits for the fleet pool before giving
// the frame up: past the deadline the conversation perceives nothing — the
// protocol's timeout machinery takes over — and the abandoned frame is shed
// at the drone's own ring (owner-attributed) or discarded when its late
// result lands. Zero (the default) waits for the pool indefinitely, which
// keeps simulations deterministic; real fleets holding a perception budget
// set a deadline. Ignored on systems without WithSharedPipeline.
func WithPerceptionDeadline(d time.Duration) Option {
	return func(c *config) { c.perceiveDdl = d }
}

// WithHome places the drone's base station.
func WithHome(h geom.Vec3) Option { return func(c *config) { c.home = h } }

// WithNegotiationGeometry sets the stand-off distance and altitude used
// when conversing (defaults: the paper's 3 m and 5 m).
func WithNegotiationGeometry(standoffM, altitudeM float64) Option {
	return func(c *config) {
		c.standoff = standoffM
		c.negotAlt = altitudeM
	}
}

// WithWind adds a wind field (mean + gust standard deviation).
func WithWind(mean geom.Vec2, gustStd float64) Option {
	return func(c *config) {
		c.windMean = mean
		c.windGust = gustStd
		c.windSet = true
	}
}

// System is the assembled human-drone communication stack. The streaming
// members (NewStream, RecognizeBatch) are safe for concurrent use; the
// single-drone members (Converse, EnsureAirborne) drive the one agent and
// must not be called concurrently with each other.
type System struct {
	Agent  *drone.Agent
	Rend   *scene.Renderer
	Rec    *recognizer.Recognizer
	Engine *protocol.Engine
	Log    *telemetry.Log
	Rng    *rand.Rand

	standoff float64
	negotAlt float64

	pipeCfg          pipeline.Config
	sharedPipe       *pipeline.Pipeline // non-nil: externally owned shared pool
	poolLabel        string
	perceiveDeadline time.Duration // pooled-perception wall-clock budget (0: wait)
	pipeOnce         sync.Once
	pipe             atomic.Pointer[pipeline.Pipeline]
	owner            atomic.Pointer[pipeline.Owner] // this system's attachment handle
	pipeErr          error

	feedOnce sync.Once
	feed     *perceptionFeed // pool-routed conversation perception (shared systems)
	feedErr  error

	framePool raster.Pool // recycles conversation/perception frame buffers
}

// NewSystem assembles a system: drone at home, references built at the
// paper's canonical view, engine ready.
func NewSystem(opts ...Option) (*System, error) {
	cfg := &config{
		seed:     1,
		standoff: 3,
		negotAlt: 5,
	}
	for _, o := range opts {
		o(cfg)
	}
	log := telemetry.NewLog()
	rng := rand.New(rand.NewSource(cfg.seed))

	agent, err := drone.New(drone.Config{
		Flight: cfg.flight,
		Ring:   cfg.ring,
		Safety: cfg.safety,
		Home:   cfg.home,
	}, log)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if cfg.windSet {
		w, err := flight.NewWind(cfg.windMean, cfg.windGust, rng)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		agent.D.Wind = w
	}

	rend := scene.NewRenderer(cfg.sceneCfg)
	rec, err := recognizer.New(cfg.recCfg)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := rec.BuildReferences(rend, scene.View{
		AltitudeM: cfg.negotAlt, DistanceM: cfg.standoff,
	}); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	sys := &System{
		Agent:            agent,
		Rend:             rend,
		Rec:              rec,
		Engine:           protocol.NewEngine(cfg.protoCfg, log),
		Log:              log,
		Rng:              rng,
		standoff:         cfg.standoff,
		negotAlt:         cfg.negotAlt,
		pipeCfg:          cfg.pipeCfg,
		sharedPipe:       cfg.sharedPipe,
		poolLabel:        cfg.poolLabel,
		perceiveDeadline: cfg.perceiveDdl,
	}
	if cfg.sharedPipe != nil {
		// Attach eagerly: the pool's reference count must reflect every
		// constructed system, or a fleet whose first drone finished before
		// the last one started streaming would shut the pool down early.
		if _, err := sys.ensurePipeline(); err != nil {
			return nil, fmt.Errorf("core: attach shared pipeline: %w", err)
		}
	}
	return sys, nil
}

// NewSharedPool builds a standalone recognition worker pool for a fleet: a
// renderer and recogniser assembled from the same options NewSystem honours
// (scene, recogniser, negotiation geometry and pipeline sizing; airframe and
// world options are irrelevant here and ignored), references built at the
// canonical negotiation view, and the workers started. Hand the pool to N
// systems via WithSharedPipeline; it drains when the last attached system
// closes, or immediately on Pipeline.Close (the force path). A pool nobody
// ever attaches to must be shut down with Pipeline.Close.
func NewSharedPool(opts ...Option) (*pipeline.Pipeline, error) {
	cfg := &config{
		seed:     1,
		standoff: 3,
		negotAlt: 5,
	}
	for _, o := range opts {
		o(cfg)
	}
	rend := scene.NewRenderer(cfg.sceneCfg)
	rec, err := recognizer.New(cfg.recCfg)
	if err != nil {
		return nil, fmt.Errorf("core: shared pool: %w", err)
	}
	if err := rec.BuildReferences(rend, scene.View{
		AltitudeM: cfg.negotAlt, DistanceM: cfg.standoff,
	}); err != nil {
		return nil, fmt.Errorf("core: shared pool: %w", err)
	}
	p, err := pipeline.New(rec, cfg.pipeCfg)
	if err != nil {
		return nil, fmt.Errorf("core: shared pool: %w", err)
	}
	return p, nil
}

// EnsureAirborne takes off if the drone is parked.
func (s *System) EnsureAirborne() error {
	if s.Agent.D.S.Pos.Z > 0.3 {
		return nil
	}
	if _, err := s.Agent.FlyPattern(flight.PatternTakeOff, geom.Vec3{}); err != nil {
		return err
	}
	return nil
}

// Converse runs the full Fig 3 negotiation against a collaborator standing
// in the world: real flight patterns, rendered frames, SAX recognition.
func (s *System) Converse(c *human.Collaborator) (protocol.Result, error) {
	if c == nil {
		return protocol.Result{}, errors.New("core: nil collaborator")
	}
	if err := s.EnsureAirborne(); err != nil {
		return protocol.Result{}, err
	}
	env := newConversationEnv(s, c)
	res, err := s.Engine.Negotiate(env)
	env.close()
	return res, err
}

// StandoffPoint computes the negotiation hover point for a collaborator:
// standoff distance away (on the drone's current approach bearing) at
// negotiation altitude.
func (s *System) StandoffPoint(c *human.Collaborator) geom.Vec3 {
	from := s.Agent.D.S.Pos.XY()
	hp := c.Position()
	dir := from.Sub(hp)
	if dir.Norm() < 1e-9 {
		dir = geom.V2(0, -1)
	}
	p := hp.Add(dir.Unit().Scale(s.standoff))
	return geom.V3(p.X, p.Y, s.negotAlt)
}
