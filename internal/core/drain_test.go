package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"hdc/internal/body"
	"hdc/internal/pipeline"
	"hdc/internal/raster"
	"hdc/internal/scene"
)

// drain_test.go is the shutdown audit for the service layer (ISSUE 3): a
// server drain closes the System while RecognizeBatch calls and streams are
// in flight from many goroutines. The contract under test: no panic, no
// hang, and every frame's error slot is either nil (completed before the
// drain) or a clean pipeline.ErrClosed/ErrStreamClosed — never a corrupted
// result or a send on a closed channel.

// TestCloseDuringInFlightBatches hammers Close against concurrent batch and
// stream traffic. Run with -race: the assertions are as much about the
// race detector's silence as about the error taxonomy.
func TestCloseDuringInFlightBatches(t *testing.T) {
	sys, err := NewSystem(
		WithSceneConfig(scene.Config{Width: 128, Height: 128}),
		WithPipelineConfig(pipeline.Config{Workers: 2, QueueDepth: 2, StreamWindow: 2}),
	)
	if err != nil {
		t.Fatal(err)
	}

	frames := make([]*raster.Gray, 8)
	for i := range frames {
		f, err := sys.Rend.Render(body.SignYes, scene.ReferenceView(), body.Options{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		frames[i] = f
	}

	const clients = 10
	var wg sync.WaitGroup
	errCh := make(chan error, clients*8)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; ; round++ {
				if c%2 == 0 {
					results, errs, err := sys.RecognizeBatch(frames)
					if err != nil {
						if !errors.Is(err, pipeline.ErrClosed) {
							errCh <- err
						}
						return
					}
					for i := range frames {
						switch {
						case errs[i] == nil:
							if !results[i].OK {
								errCh <- errors.New("nil error but result not OK")
							}
						case errors.Is(errs[i], pipeline.ErrClosed):
							// Clean drain verdict for a frame overtaken by Close.
						default:
							errCh <- errs[i]
						}
					}
				} else {
					st, err := sys.NewStream()
					if err != nil {
						if !errors.Is(err, pipeline.ErrClosed) {
							errCh <- err
						}
						return
					}
					go func() {
						for _, f := range frames {
							if err := st.Submit(f); err != nil {
								return
							}
						}
						st.Close()
					}()
					for r := range st.Results() {
						if r.Err != nil &&
							!errors.Is(r.Err, pipeline.ErrClosed) &&
							!errors.Is(r.Err, pipeline.ErrStreamClosed) {
							errCh <- r.Err
						}
					}
				}
			}
		}()
	}

	time.Sleep(30 * time.Millisecond) // let traffic pile onto the tiny pool

	// Concurrent Closes must also be safe (the server and the process
	// signal handler can race to shut down).
	var closers sync.WaitGroup
	for i := 0; i < 3; i++ {
		closers.Add(1)
		go func() {
			defer closers.Done()
			sys.Close()
		}()
	}
	closers.Wait()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// The pool reports closed, and post-drain calls fail cleanly.
	stats, started := sys.PoolStats()
	if !started || !stats.Closed {
		t.Fatalf("pool stats after drain: started=%v %+v", started, stats)
	}
	if _, _, err := sys.RecognizeBatch(frames); !errors.Is(err, pipeline.ErrClosed) {
		t.Fatalf("batch after drain: %v", err)
	}
}

// TestMultiSystemAttachDetachDrain hammers the reference-counted lifecycle
// end to end: goroutines keep constructing systems against one shared pool
// (attach), pushing batch and stream traffic through them, and closing them
// (detach) in arbitrary interleavings, while the main goroutine eventually
// pulls the plug. Every operation must resolve to success or a clean
// pipeline.ErrClosed/ErrStreamClosed — never a panic, a hang, or a system
// that attached to a pool already drained by the last detach.
func TestMultiSystemAttachDetachDrain(t *testing.T) {
	pool, err := NewSharedPool(
		WithSceneConfig(scene.Config{Width: 128, Height: 128}),
		WithPipelineConfig(pipeline.Config{Workers: 2, QueueDepth: 2, StreamWindow: 2}),
	)
	if err != nil {
		t.Fatal(err)
	}

	seed, err := NewSystem(WithSceneConfig(scene.Config{Width: 128, Height: 128}))
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()
	frames := make([]*raster.Gray, 4)
	for i := range frames {
		f, err := seed.Rend.Render(body.SignYes, scene.ReferenceView(), body.Options{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		frames[i] = f
	}

	const lanes = 8
	var wg sync.WaitGroup
	errCh := make(chan error, lanes*8)
	for l := 0; l < lanes; l++ {
		l := l
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 6; round++ {
				sys, err := NewSystem(
					WithSceneConfig(scene.Config{Width: 128, Height: 128}),
					WithSharedPipeline(pool),
				)
				if err != nil {
					if !errors.Is(err, pipeline.ErrClosed) {
						errCh <- err
					}
					return
				}
				if (l+round)%2 == 0 {
					_, errs, err := sys.RecognizeBatch(frames)
					if err != nil {
						if !errors.Is(err, pipeline.ErrClosed) {
							errCh <- err
						}
					} else {
						for _, e := range errs {
							if e != nil && !errors.Is(e, pipeline.ErrClosed) {
								errCh <- e
							}
						}
					}
				} else {
					st, err := sys.NewStream()
					if err != nil {
						if !errors.Is(err, pipeline.ErrClosed) {
							errCh <- err
						}
					} else {
						go func() {
							for _, f := range frames {
								if st.Submit(f) != nil {
									return
								}
							}
							st.Close()
						}()
						for r := range st.Results() {
							if r.Err != nil &&
								!errors.Is(r.Err, pipeline.ErrClosed) &&
								!errors.Is(r.Err, pipeline.ErrStreamClosed) {
								errCh <- r.Err
							}
						}
					}
				}
				sys.Close()
			}
		}()
	}
	wg.Wait()
	// Every lane detached its systems, so the last detach has already
	// drained the pool; the force path must still be a harmless no-op, and
	// the closed verdict must be visible to late arrivals.
	pool.Close()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if s := pool.Stats(); !s.Closed || s.Attached != 0 {
		t.Fatalf("end state: %+v", s)
	}
	if _, err := NewSystem(WithSharedPipeline(pool)); !errors.Is(err, pipeline.ErrClosed) {
		t.Fatalf("attach after drain: %v, want ErrClosed", err)
	}
}

// TestPoolStatsDoesNotStartPool pins that observing a system is side-effect
// free: PoolStats must not start (or block) the worker pool, and must not
// consume the lazy-start once.
func TestPoolStatsDoesNotStartPool(t *testing.T) {
	sys, err := NewSystem(WithSceneConfig(scene.Config{Width: 128, Height: 128}))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, started := sys.PoolStats(); started {
		t.Fatal("PoolStats started the pool")
	}
	// The pool still starts lazily afterwards.
	st, err := sys.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	stats, started := sys.PoolStats()
	if !started || stats.Workers <= 0 {
		t.Fatalf("pool after NewStream: started=%v %+v", started, stats)
	}
}
