package core

import (
	"errors"
	"sync"
	"time"

	"hdc/internal/pipeline"
	"hdc/internal/raster"
	"hdc/internal/recognizer"
)

// feed.go routes a shared system's conversation perception through the fleet
// pool. Each drone's camera frames pass through a private bounded ring
// (pipeline.Source) into an owner-attributed stream, so recognition capacity
// is drawn from the fleet-level pool. Overload degrades per drone: with a
// perception deadline set (WithPerceptionDeadline), a drone whose frame is
// not served in time gives up on that frame — the next offer evicts it from
// the 1-slot ring (shed, owner-attributed) and the conversation simply
// perceives nothing, handing control to the protocol's timeout machinery —
// instead of queueing unboundedly or starving the rest of the fleet. Without
// a deadline (the default, and the deterministic choice for simulation),
// perceive waits for the pool: the per-stream window still bounds how much
// of the pool one drone can hold, so fleet isolation holds either way.
// Private (non-shared) systems keep the direct synchronous render→recognise
// path; their pool has no competing tenants.
//
// Frame ownership in pooled mode: perceive takes ownership of the frame at
// Offer and recycles every frame it ever offered back into the system's
// framePool exactly once — on delivery, on ring eviction, or when a late
// result of an abandoned (timed-out) frame finally lands. Callers therefore
// render each pooled perception into a fresh framePool buffer and never
// touch it again.

// errFrameShed reports that a perception frame was shed (ring eviction under
// pool pressure) or abandoned at its deadline; conversations treat it as
// "nothing perceived", never as a hard failure.
var errFrameShed = errors.New("core: perception frame shed under pool pressure")

// perceptionFeed is one system's camera lane into its (typically shared)
// worker pool: an owner-attributed stream fronted by a 1-slot drop-oldest
// ring, plus the bookkeeping that pairs the single in-flight perception with
// its result, shed notice, or deadline. Conversations are documented
// non-concurrent per system, so at most one perception is waiting at a time.
type perceptionFeed struct {
	sys *System
	st  *pipeline.Stream
	src *pipeline.Source

	mu      sync.Mutex
	cur     *raster.Gray  // frame the current perception is waiting on
	curShed chan struct{} // cap 1: cur was evicted/discarded by the ring
}

// ensureFeed lazily builds the system's perception feed on first pooled
// perception.
func (s *System) ensureFeed() (*perceptionFeed, error) {
	s.feedOnce.Do(func() {
		o, err := s.ensurePipeline()
		if err != nil {
			s.feedErr = err
			return
		}
		st, err := o.NewStream()
		if err != nil {
			s.feedErr = err
			return
		}
		feed := &perceptionFeed{sys: s, st: st, curShed: make(chan struct{}, 1)}
		// Results discarded on the stream's abandon path (closeFeed) recycle
		// through the same resolver, so no pooled buffer is ever stranded.
		st.SetDropHook(feed.dropped)
		// Capacity 1 gives freshest-frame semantics: when the forwarder is
		// parked in Submit against a saturated pool, the next Offer evicts
		// whatever the ring still holds.
		src, err := pipeline.NewSource(st, pipeline.SourceConfig{
			Capacity: 1,
			OnDrop:   feed.dropped,
		})
		if err != nil {
			st.Abandon()
			s.feedErr = err
			return
		}
		feed.src = src
		s.feed = feed
	})
	if s.feedErr != nil {
		return nil, s.feedErr
	}
	return s.feed, nil
}

// dropped handles a frame the ring gave up on: if it is the frame the
// current perception waits for, signal the shed; either way the buffer goes
// back to the frame pool. Every offered frame resolves exactly once (result
// or drop), so a recycled pointer can never be confused with a live one.
func (f *perceptionFeed) dropped(frame *raster.Gray) {
	f.mu.Lock()
	if frame == f.cur {
		f.cur = nil
		select {
		case f.curShed <- struct{}{}:
		default:
		}
	}
	f.mu.Unlock()
	f.sys.framePool.Put(frame)
}

// finish resolves a delivered result frame: report whether it belongs to the
// current perception, and recycle the buffer.
func (f *perceptionFeed) finish(frame *raster.Gray) (current bool) {
	f.mu.Lock()
	if frame == f.cur {
		f.cur = nil
		current = true
	}
	f.mu.Unlock()
	if frame != nil {
		f.sys.framePool.Put(frame)
	}
	return current
}

// perceive pushes one rendered frame through the ring and waits for the
// pool's verdict, a shed notice, or — when the system has a perception
// deadline — the deadline. Ownership of frame passes to the feed (see the
// file comment); on every return path the buffer is or will be recycled.
func (f *perceptionFeed) perceive(frame *raster.Gray) (recognizer.Result, error) {
	f.mu.Lock()
	f.cur = frame
	// Drain a stale shed token from a perception that timed out in the same
	// instant its frame was evicted.
	select {
	case <-f.curShed:
	default:
	}
	f.mu.Unlock()

	if err := f.src.Offer(frame); err != nil {
		f.mu.Lock()
		f.cur = nil
		f.mu.Unlock()
		f.sys.framePool.Put(frame)
		return recognizer.Result{}, err
	}

	var deadline <-chan time.Time
	if d := f.sys.perceiveDeadline; d > 0 {
		timer := time.NewTimer(d)
		defer timer.Stop()
		deadline = timer.C
	}
	for {
		select {
		case r, ok := <-f.st.Results():
			if !ok {
				return recognizer.Result{}, pipeline.ErrClosed
			}
			if f.finish(r.Frame) {
				return r.Res, r.Err
			}
			// A late result of an abandoned frame: recycled, keep waiting.
		case <-f.curShed:
			return recognizer.Result{}, errFrameShed
		case <-deadline:
			// Give up on this frame; it stays in flight and resolves later
			// as a stale result or a ring eviction, recycling its buffer.
			f.mu.Lock()
			f.cur = nil
			f.mu.Unlock()
			return recognizer.Result{}, errFrameShed
		}
	}
}

// perceivePooled reports whether conversation perception goes through the
// worker pool (fleet-shared systems) rather than the synchronous in-process
// recogniser.
func (s *System) perceivePooled() bool { return s.sharedPipe != nil }

// perceive classifies one rendered conversation frame. A private system runs
// the recogniser synchronously on the caller's scratch, and the caller keeps
// owning the frame. A shared system routes the frame through its ring and
// the fleet pool — the frame must come from the system's framePool and
// ownership passes to the feed.
func (s *System) perceive(sc *recognizer.Scratch, frame *raster.Gray) (recognizer.Result, error) {
	if !s.perceivePooled() {
		return s.Rec.RecognizeWith(sc, frame)
	}
	feed, err := s.ensureFeed()
	if err != nil {
		s.framePool.Put(frame)
		return recognizer.Result{}, err
	}
	return feed.perceive(frame)
}

// closeFeed tears the perception feed down without blocking on a wedged
// pool: the ring discards anything still queued (recycling through the drop
// hook) and the stream drops undelivered results. Safe when no feed was
// ever built.
func (s *System) closeFeed() {
	s.feedOnce.Do(func() { s.feedErr = pipeline.ErrClosed })
	if s.feed == nil {
		return
	}
	s.feed.src.Abandon()
	s.feed.st.Abandon()
}
