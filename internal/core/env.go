package core

import (
	"errors"
	"time"

	"hdc/internal/body"
	"hdc/internal/drone"
	"hdc/internal/flight"
	"hdc/internal/geom"
	"hdc/internal/human"
	"hdc/internal/pipeline"
	"hdc/internal/protocol"
	"hdc/internal/raster"
	"hdc/internal/recognizer"
	"hdc/internal/scene"
)

// conversationEnv binds protocol.Env to the full simulated stack: flight
// patterns are flown by the drone agent, and PerceiveSign renders the
// collaborator from the drone's actual pose and runs the SAX recogniser on
// the frame. This is where Fig 3 happens end to end.
type conversationEnv struct {
	sys     *System
	human   *human.Collaborator
	frame   *raster.Gray        // pooled render target, reused across perceptions
	scratch *recognizer.Scratch // per-conversation recognition lane (vision + lookup buffers)

	extra     time.Duration // perception time not covered by the agent clock
	lastPoked bool
	lastAsked bool
}

func newConversationEnv(s *System, c *human.Collaborator) *conversationEnv {
	// The safety monitor must know about the collaborator, and the
	// negotiated approach happens inside the separation bubble, so the
	// waiver is managed around EnterArea.
	s.Agent.SetHumans([]geom.Vec2{c.Position()})
	cfg := s.Rend.Config()
	return &conversationEnv{
		sys:     s,
		human:   c,
		frame:   s.framePool.Get(cfg.Width, cfg.Height),
		scratch: recognizer.NewScratch(),
	}
}

func (e *conversationEnv) close() {
	e.sys.Agent.WaiveSeparation(false)
	e.sys.framePool.Put(e.frame)
	e.frame = nil
}

// Now implements protocol.Env.
func (e *conversationEnv) Now() time.Duration { return e.sys.Agent.Clock() + e.extra }

// mapErr converts agent safety trips into protocol aborts.
func mapErr(err error) error {
	if errors.Is(err, drone.ErrSafetyTripped) {
		return protocol.ErrSafetyAbort
	}
	return err
}

// FlyPattern implements protocol.Env.
func (e *conversationEnv) FlyPattern(p flight.Pattern) error {
	a := e.sys.Agent
	var target geom.Vec3
	switch p {
	case flight.PatternCruise:
		target = e.sys.StandoffPoint(e.human)
	case flight.PatternPoke:
		e.lastPoked = true
		hp := e.human.Position()
		target = geom.V3(hp.X, hp.Y, e.sys.negotAlt)
	case flight.PatternRectangle:
		e.lastAsked = true
		hp := e.human.Position()
		target = geom.V3(hp.X, hp.Y, e.sys.negotAlt)
	}
	_, err := a.FlyPattern(p, target)
	return mapErr(err)
}

// PerceiveSign implements protocol.Env: the collaborator reacts to the last
// communicative pattern, the drone camera renders them from the true
// relative geometry and the SAX pipeline classifies the frame.
func (e *conversationEnv) PerceiveSign(timeout time.Duration) (body.Sign, bool, error) {
	var resp human.Response
	switch {
	case e.lastAsked:
		e.lastAsked = false
		resp = e.human.RespondAreaRequest()
	case e.lastPoked:
		e.lastPoked = false
		resp = e.human.RespondAttention()
	default:
		e.extra += timeout
		return 0, false, nil
	}
	if !resp.Responded || resp.Latency > timeout {
		e.extra += timeout
		return 0, false, nil
	}
	e.extra += resp.Latency

	// An attending collaborator turns towards the drone (with human
	// imprecision) before signing.
	bearing := geom.HeadingOf(e.sys.Agent.D.S.Pos.XY().Sub(e.human.Position()))
	e.human.SetFacing(bearing.Add(geom.Deg2Rad(resp.Jitter)))

	view, ok := e.viewOf()
	if !ok {
		e.extra += timeout - resp.Latency
		return 0, false, nil
	}
	// A private system renders into the conversation's reusable buffer and
	// recognises synchronously on its scratch. A system attached to a fleet
	// pool renders into a fresh framePool buffer — ownership passes to the
	// perception feed at Offer, which recycles it on every path — and the
	// frame travels through the drone's ingest ring to the shared workers
	// (see feed.go).
	target := e.frame
	if e.sys.perceivePooled() {
		cfg := e.sys.Rend.Config()
		target = e.sys.framePool.Get(cfg.Width, cfg.Height)
	}
	frame, err := e.sys.Rend.RenderInto(target, resp.Sign, view, resp.BodyOptions(), e.sys.Rng)
	if err != nil {
		if target != e.frame {
			e.sys.framePool.Put(target)
		}
		e.extra += timeout - resp.Latency
		return 0, false, nil
	}
	res, err := e.sys.perceive(e.scratch, frame)
	e.extra += res.Timings.Total
	if err != nil {
		switch {
		case errors.Is(err, recognizer.ErrNoSign):
			return 0, false, nil
		case errors.Is(err, errFrameShed):
			// The fleet pool was saturated and this drone's ring shed the
			// frame: the drone simply saw nothing this round, and the
			// protocol's timeout/retry machinery handles it like any other
			// missed perception.
			e.extra += timeout - resp.Latency
			return 0, false, nil
		case errors.Is(err, pipeline.ErrClosed), errors.Is(err, pipeline.ErrSourceClosed),
			errors.Is(err, pipeline.ErrStreamClosed):
			// The pool went away mid-conversation (shutdown): surface it so
			// the mission aborts cleanly instead of spinning on a dead pool.
			return 0, false, err
		default:
			return 0, false, nil // vision failure = nothing perceived
		}
	}
	return res.Sign, true, nil
}

// viewOf computes the camera view of the collaborator from the drone's
// actual pose. ok is false when the geometry is outside the renderer's
// plausible envelope.
func (e *conversationEnv) viewOf() (scene.View, bool) {
	dronePos := e.sys.Agent.D.S.Pos
	hp := e.human.Position()
	dist := dronePos.XY().Dist(hp)
	if dist < 0.5 {
		return scene.View{}, false
	}
	bearingFromHuman := geom.HeadingOf(dronePos.XY().Sub(hp))
	rel := e.human.Heading().Diff(bearingFromHuman)
	v := scene.View{
		AltitudeM:  dronePos.Z,
		DistanceM:  dist,
		AzimuthDeg: -geom.Rad2Deg(rel),
	}
	return v, v.Validate() == nil
}

// EnterArea implements protocol.Env: the human granted access, so the
// separation trigger is waived for the approach.
func (e *conversationEnv) EnterArea() error {
	a := e.sys.Agent
	a.WaiveSeparation(true)
	hp := e.human.Position()
	target := geom.V3(hp.X, hp.Y, e.sys.negotAlt*0.6)
	_, err := a.FlyPattern(flight.PatternCruise, target)
	return mapErr(err)
}

// Retreat implements protocol.Env: back off to twice the stand-off.
func (e *conversationEnv) Retreat() error {
	a := e.sys.Agent
	a.WaiveSeparation(false)
	from := a.D.S.Pos.XY()
	hp := e.human.Position()
	dir := from.Sub(hp)
	if dir.Norm() < 1e-9 {
		dir = geom.V2(0, -1)
	}
	p := hp.Add(dir.Unit().Scale(2 * e.sys.standoff))
	_, err := a.FlyPattern(flight.PatternCruise, geom.V3(p.X, p.Y, e.sys.negotAlt))
	return mapErr(err)
}

// SignalDanger implements protocol.Env.
func (e *conversationEnv) SignalDanger() {
	e.sys.Agent.Ring.SetDanger()
}

// Interface compliance.
var _ protocol.Env = (*conversationEnv)(nil)
