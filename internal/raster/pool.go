package raster

import (
	"sync"
	"sync/atomic"
)

// Pool recycles Gray frame buffers across goroutines. It backs the streaming
// recognition pipeline, where every frame would otherwise allocate a fresh
// pixel buffer: producers Get a frame, the renderer draws into it, and the
// consumer Puts it back once the recognition result is out. The zero value is
// ready to use.
type Pool struct {
	p sync.Pool

	gets atomic.Uint64
	puts atomic.Uint64
}

// Get returns a w×h frame with every pixel 0, reusing a pooled buffer when
// one of sufficient capacity is available. Invalid dimensions return nil.
func (p *Pool) Get(w, h int) *Gray {
	g, _ := p.p.Get().(*Gray)
	if g == nil {
		g = &Gray{}
	}
	if err := g.Reset(w, h); err != nil {
		p.p.Put(g)
		return nil
	}
	p.gets.Add(1)
	return g
}

// Put returns a frame to the pool. Nil frames are ignored. The caller must
// not use g afterwards.
func (p *Pool) Put(g *Gray) {
	if g == nil {
		return
	}
	p.puts.Add(1)
	p.p.Put(g)
}

// Stats returns the lifetime checkout counters. gets−puts is the number of
// frames currently checked out; a figure that only grows under steady-state
// traffic is a frame leak (every Get must be matched by exactly one Put).
func (p *Pool) Stats() (gets, puts uint64) {
	return p.gets.Load(), p.puts.Load()
}
