package raster

import "sync"

// Pool recycles Gray frame buffers across goroutines. It backs the streaming
// recognition pipeline, where every frame would otherwise allocate a fresh
// pixel buffer: producers Get a frame, the renderer draws into it, and the
// consumer Puts it back once the recognition result is out. The zero value is
// ready to use.
type Pool struct {
	p sync.Pool
}

// Get returns a w×h frame with every pixel 0, reusing a pooled buffer when
// one of sufficient capacity is available. Invalid dimensions return nil.
func (p *Pool) Get(w, h int) *Gray {
	g, _ := p.p.Get().(*Gray)
	if g == nil {
		g = &Gray{}
	}
	if err := g.Reset(w, h); err != nil {
		p.p.Put(g)
		return nil
	}
	return g
}

// Put returns a frame to the pool. Nil frames are ignored. The caller must
// not use g afterwards.
func (p *Pool) Put(g *Gray) {
	if g == nil {
		return
	}
	p.p.Put(g)
}
