package raster

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewGrayValidation(t *testing.T) {
	if _, err := NewGray(0, 5); err == nil {
		t.Error("zero width should fail")
	}
	if _, err := NewGray(5, -1); err == nil {
		t.Error("negative height should fail")
	}
	g, err := NewGray(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Pix) != 6 {
		t.Fatalf("pix len %d", len(g.Pix))
	}
}

func TestSetAtBounds(t *testing.T) {
	g := MustGray(4, 4)
	g.Set(1, 2, 200)
	if g.At(1, 2) != 200 {
		t.Fatal("Set/At round trip failed")
	}
	// Out-of-bounds are silent no-ops / zeros.
	g.Set(-1, 0, 50)
	g.Set(4, 0, 50)
	if g.At(-1, 0) != 0 || g.At(0, 9) != 0 {
		t.Fatal("out-of-bounds At should be 0")
	}
}

func TestFillAndStats(t *testing.T) {
	g := MustGray(10, 10)
	g.Fill(100)
	if g.Mean() != 100 {
		t.Fatalf("mean %v", g.Mean())
	}
	if g.CountAbove(99) != 100 || g.CountAbove(100) != 0 {
		t.Fatal("CountAbove wrong")
	}
	h := g.Histogram()
	if h[100] != 100 {
		t.Fatal("histogram wrong")
	}
}

func TestFillPolygonSquare(t *testing.T) {
	g := MustGray(20, 20)
	g.FillPolygon(
		[]float64{5, 15, 15, 5},
		[]float64{5, 5, 15, 15},
		255,
	)
	area := g.CountAbove(0)
	if area < 81 || area > 121 {
		t.Fatalf("10x10 square area = %d, want ≈100", area)
	}
	if g.At(10, 10) != 255 {
		t.Fatal("center not filled")
	}
	if g.At(2, 2) != 0 || g.At(18, 18) != 0 {
		t.Fatal("outside filled")
	}
}

func TestFillPolygonTriangleAndConcave(t *testing.T) {
	g := MustGray(30, 30)
	g.FillPolygon([]float64{5, 25, 15}, []float64{25, 25, 5}, 255)
	// Triangle area = 0.5*20*20 = 200.
	area := g.CountAbove(0)
	if area < 160 || area > 240 {
		t.Fatalf("triangle area = %d, want ≈200", area)
	}

	// Concave "L" shape: even-odd rule must leave the notch empty.
	g2 := MustGray(30, 30)
	g2.FillPolygon(
		[]float64{5, 25, 25, 15, 15, 5},
		[]float64{5, 5, 15, 15, 25, 25},
		255,
	)
	if g2.At(20, 20) != 0 {
		t.Fatal("concave notch should be empty")
	}
	if g2.At(10, 10) == 0 || g2.At(10, 20) == 0 {
		t.Fatal("L body should be filled")
	}
}

func TestFillPolygonDegenerate(t *testing.T) {
	g := MustGray(10, 10)
	g.FillPolygon([]float64{1, 2}, []float64{1, 2}, 255)    // < 3 vertices
	g.FillPolygon([]float64{1, 2, 3}, []float64{1, 2}, 255) // mismatched
	if g.CountAbove(0) != 0 {
		t.Fatal("degenerate polygons must draw nothing")
	}
}

func TestFillDisc(t *testing.T) {
	g := MustGray(40, 40)
	g.FillDisc(20, 20, 10, 255)
	area := float64(g.CountAbove(0))
	want := 3.14159 * 100
	if area < want*0.9 || area > want*1.1 {
		t.Fatalf("disc area = %v, want ≈%v", area, want)
	}
	g.FillDisc(5, 5, -1, 255) // no-op
}

func TestStrokeLine(t *testing.T) {
	g := MustGray(40, 40)
	g.StrokeLine(5, 20, 35, 20, 2, 255)
	if g.At(20, 20) != 255 {
		t.Fatal("line centre not drawn")
	}
	if g.At(20, 26) != 0 {
		t.Fatal("line too thick")
	}
	// Zero-length stroke degenerates to a disc.
	g2 := MustGray(20, 20)
	g2.StrokeLine(10, 10, 10, 10, 3, 255)
	if g2.At(10, 10) != 255 {
		t.Fatal("degenerate stroke should draw a disc")
	}
}

func TestBoxBlurPreservesMass(t *testing.T) {
	g := MustGray(32, 32)
	g.FillDisc(16, 16, 6, 200)
	before := g.Mean()
	g.BoxBlur(2, 3)
	after := g.Mean()
	if after < before*0.85 || after > before*1.15 {
		t.Fatalf("blur changed mean too much: %v → %v", before, after)
	}
	// Blur must actually spread: the max should drop.
	var maxv uint8
	for _, p := range g.Pix {
		if p > maxv {
			maxv = p
		}
	}
	if maxv >= 200 {
		t.Fatal("blur did not attenuate the peak")
	}
	// No-ops.
	h := g.Clone()
	h.BoxBlur(0, 3)
	if !bytes.Equal(h.Pix, g.Pix) {
		t.Fatal("radius 0 must be a no-op")
	}
}

func TestNoiseInjection(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := MustGray(50, 50)
	g.Fill(128)
	g.AddGaussianNoise(rng, 10)
	if g.Mean() < 120 || g.Mean() > 136 {
		t.Fatalf("noisy mean %v drifted", g.Mean())
	}
	var differ int
	for _, p := range g.Pix {
		if p != 128 {
			differ++
		}
	}
	if differ < len(g.Pix)/2 {
		t.Fatal("noise did not perturb pixels")
	}

	g2 := MustGray(50, 50)
	g2.Fill(128)
	g2.AddSaltPepper(rng, 0.1)
	extremes := 0
	for _, p := range g2.Pix {
		if p == 0 || p == 255 {
			extremes++
		}
	}
	if extremes < 100 {
		t.Fatalf("salt&pepper flipped too few: %d", extremes)
	}
	// nil rng / zero params are no-ops.
	g3 := MustGray(5, 5)
	g3.AddGaussianNoise(nil, 10)
	g3.AddSaltPepper(nil, 0.5)
	if g3.CountAbove(0) != 0 {
		t.Fatal("noise with nil rng must be a no-op")
	}
}

func TestDownsample(t *testing.T) {
	g := MustGray(8, 8)
	g.Fill(100)
	d := g.Downsample(2)
	if d.W != 4 || d.H != 4 {
		t.Fatalf("downsample dims %dx%d", d.W, d.H)
	}
	if d.Mean() != 100 {
		t.Fatalf("downsample mean %v", d.Mean())
	}
	same := g.Downsample(1)
	if same.W != 8 || !bytes.Equal(same.Pix, g.Pix) {
		t.Fatal("factor 1 should clone")
	}
}

func TestClone(t *testing.T) {
	g := MustGray(4, 4)
	g.Set(0, 0, 7)
	c := g.Clone()
	c.Set(0, 0, 9)
	if g.At(0, 0) != 7 {
		t.Fatal("clone aliases")
	}
}

func TestPGMHeader(t *testing.T) {
	g := MustGray(3, 2)
	b := g.PGM()
	if !bytes.HasPrefix(b, []byte("P5\n3 2\n255\n")) {
		t.Fatalf("bad PGM header: %q", b[:12])
	}
	if len(b) != len("P5\n3 2\n255\n")+6 {
		t.Fatalf("bad PGM length %d", len(b))
	}
}

func TestASCII(t *testing.T) {
	g := MustGray(10, 4)
	g.Fill(255)
	art := g.ASCII(0)
	if len(art) == 0 {
		t.Fatal("empty ASCII art")
	}
	for _, line := range bytes.Split([]byte(art), []byte("\n")) {
		for _, ch := range line {
			if ch != '@' {
				t.Fatalf("white image should render '@', got %q", ch)
			}
		}
	}
	// Downsampled width obeys maxW.
	wide := MustGray(100, 10)
	art2 := wide.ASCII(20)
	first := bytes.SplitN([]byte(art2), []byte("\n"), 2)[0]
	if len(first) > 20 {
		t.Fatalf("ASCII width %d exceeds 20", len(first))
	}
}

func TestClampU8Property(t *testing.T) {
	f := func(v float64) bool {
		c := clampU8(v)
		return c <= 255
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if clampU8(-5) != 0 || clampU8(300) != 255 || clampU8(127.6) != 128 {
		t.Fatal("clamp known values wrong")
	}
}
