// Package raster provides the minimal grayscale-image substrate used by the
// synthetic drone camera and the vision pipeline: an 8-bit frame buffer,
// polygon/disc rasterisation, box blur, noise injection and PGM export. It
// stands in for the parts of OpenCV the paper's Python prototype used.
package raster

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
)

// Gray is an 8-bit grayscale image with row-major pixels. Pixel (x, y) is
// Pix[y*W+x]; origin is top-left with y growing downwards.
type Gray struct {
	W, H int
	Pix  []uint8
}

// ErrBadSize is returned when constructing an image with non-positive
// dimensions.
var ErrBadSize = errors.New("raster: image dimensions must be positive")

// NewGray allocates a zero (black) image.
func NewGray(w, h int) (*Gray, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("%w: %dx%d", ErrBadSize, w, h)
	}
	return &Gray{W: w, H: h, Pix: make([]uint8, w*h)}, nil
}

// MustGray is NewGray that panics on invalid size; for tests and literals.
func MustGray(w, h int) *Gray {
	g, err := NewGray(w, h)
	if err != nil {
		panic(err)
	}
	return g
}

// Clone returns an independent copy.
func (g *Gray) Clone() *Gray {
	out := &Gray{W: g.W, H: g.H, Pix: make([]uint8, len(g.Pix))}
	copy(out.Pix, g.Pix)
	return out
}

// Reset resizes g to w×h, reusing the pixel buffer when its capacity allows,
// and leaves every pixel at 0 (black). It is the reusable-buffer counterpart
// of NewGray for pooled frame buffers.
func (g *Gray) Reset(w, h int) error {
	if w <= 0 || h <= 0 {
		return fmt.Errorf("%w: %dx%d", ErrBadSize, w, h)
	}
	n := w * h
	if cap(g.Pix) < n {
		g.Pix = make([]uint8, n)
	} else {
		g.Pix = g.Pix[:n]
		for i := range g.Pix {
			g.Pix[i] = 0
		}
	}
	g.W, g.H = w, h
	return nil
}

// Resize reslices g to w×h, reusing the pixel buffer when capacity allows,
// WITHOUT clearing — the surviving contents are undefined. It is the cheap
// sibling of Reset for callers about to overwrite every pixel anyway (a
// full-frame Fill or copy).
func (g *Gray) Resize(w, h int) error {
	if w <= 0 || h <= 0 {
		return fmt.Errorf("%w: %dx%d", ErrBadSize, w, h)
	}
	n := w * h
	if cap(g.Pix) < n {
		g.Pix = make([]uint8, n)
	} else {
		g.Pix = g.Pix[:n]
	}
	g.W, g.H = w, h
	return nil
}

// CloneInto copies g into dst (resizing dst as needed) and returns dst.
// A nil dst allocates, making CloneInto(nil) equivalent to Clone.
func (g *Gray) CloneInto(dst *Gray) *Gray {
	if dst == nil {
		return g.Clone()
	}
	if err := dst.Resize(g.W, g.H); err != nil {
		return g.Clone()
	}
	copy(dst.Pix, g.Pix)
	return dst
}

// In reports whether (x, y) lies inside the image.
func (g *Gray) In(x, y int) bool { return x >= 0 && x < g.W && y >= 0 && y < g.H }

// At returns the pixel at (x, y), or 0 outside the image.
func (g *Gray) At(x, y int) uint8 {
	if !g.In(x, y) {
		return 0
	}
	return g.Pix[y*g.W+x]
}

// Set writes the pixel at (x, y); writes outside the image are ignored.
func (g *Gray) Set(x, y int, v uint8) {
	if g.In(x, y) {
		g.Pix[y*g.W+x] = v
	}
}

// Fill sets every pixel to v.
func (g *Gray) Fill(v uint8) {
	for i := range g.Pix {
		g.Pix[i] = v
	}
}

// Mean returns the mean pixel intensity.
func (g *Gray) Mean() float64 {
	var sum int64
	for _, p := range g.Pix {
		sum += int64(p)
	}
	return float64(sum) / float64(len(g.Pix))
}

// CountAbove returns how many pixels exceed t.
func (g *Gray) CountAbove(t uint8) int {
	var n int
	for _, p := range g.Pix {
		if p > t {
			n++
		}
	}
	return n
}

// Histogram returns the 256-bin intensity histogram.
func (g *Gray) Histogram() [256]int {
	var h [256]int
	for _, p := range g.Pix {
		h[p]++
	}
	return h
}

// FillPolygon rasterises a filled polygon (scanline, even-odd rule) with the
// given intensity. Vertices are in pixel coordinates; the polygon is closed
// implicitly. Degenerate polygons (< 3 vertices) are ignored.
func (g *Gray) FillPolygon(xs, ys []float64, v uint8) {
	n := len(xs)
	if n < 3 || len(ys) != n {
		return
	}
	minY, maxY := ys[0], ys[0]
	for _, y := range ys[1:] {
		if y < minY {
			minY = y
		}
		if y > maxY {
			maxY = y
		}
	}
	y0 := int(math.Floor(minY))
	y1 := int(math.Ceil(maxY))
	if y0 < 0 {
		y0 = 0
	}
	if y1 >= g.H {
		y1 = g.H - 1
	}
	xsect := make([]float64, 0, 8)
	for py := y0; py <= y1; py++ {
		yc := float64(py) + 0.5 // pixel-centre sampling
		xsect = xsect[:0]
		j := n - 1
		for i := 0; i < n; i++ {
			yi, yj := ys[i], ys[j]
			if (yi <= yc && yj > yc) || (yj <= yc && yi > yc) {
				t := (yc - yi) / (yj - yi)
				xsect = append(xsect, xs[i]+t*(xs[j]-xs[i]))
			}
			j = i
		}
		if len(xsect) < 2 {
			continue
		}
		sortFloats(xsect)
		for k := 0; k+1 < len(xsect); k += 2 {
			xa := int(math.Ceil(xsect[k] - 0.5))
			xb := int(math.Floor(xsect[k+1] - 0.5))
			if xa < 0 {
				xa = 0
			}
			if xb >= g.W {
				xb = g.W - 1
			}
			for px := xa; px <= xb; px++ {
				g.Pix[py*g.W+px] = v
			}
		}
	}
}

// FillDisc rasterises a filled disc centred at (cx, cy).
func (g *Gray) FillDisc(cx, cy, r float64, v uint8) {
	if r <= 0 {
		return
	}
	x0 := int(math.Floor(cx - r))
	x1 := int(math.Ceil(cx + r))
	y0 := int(math.Floor(cy - r))
	y1 := int(math.Ceil(cy + r))
	r2 := r * r
	for py := y0; py <= y1; py++ {
		for px := x0; px <= x1; px++ {
			dx := float64(px) + 0.5 - cx
			dy := float64(py) + 0.5 - cy
			if dx*dx+dy*dy <= r2 {
				g.Set(px, py, v)
			}
		}
	}
}

// StrokeLine draws a thick line (a capsule) from (x0,y0) to (x1,y1) with the
// given half-width.
func (g *Gray) StrokeLine(x0, y0, x1, y1, halfWidth float64, v uint8) {
	dx, dy := x1-x0, y1-y0
	length := math.Hypot(dx, dy)
	if length < 1e-9 {
		g.FillDisc(x0, y0, halfWidth, v)
		return
	}
	// Perpendicular offset.
	px, py := -dy/length*halfWidth, dx/length*halfWidth
	g.FillPolygon(
		[]float64{x0 + px, x1 + px, x1 - px, x0 - px},
		[]float64{y0 + py, y1 + py, y1 - py, y0 - py},
		v,
	)
	g.FillDisc(x0, y0, halfWidth, v)
	g.FillDisc(x1, y1, halfWidth, v)
}

// blurScratchPool recycles the two float planes BoxBlur needs; a full-frame
// blur would otherwise allocate ~16 bytes per pixel on every rendered frame.
var blurScratchPool = sync.Pool{New: func() any { return new(blurScratch) }}

type blurScratch struct {
	tmp, cur []float64
}

func (s *blurScratch) ensure(n int) {
	if cap(s.tmp) < n {
		s.tmp = make([]float64, n)
		s.cur = make([]float64, n)
	}
	s.tmp = s.tmp[:n]
	s.cur = s.cur[:n]
}

// BoxBlur applies an iterated box filter with the given radius; three
// iterations approximate a Gaussian. radius <= 0 is a no-op. Scratch planes
// come from an internal pool, so steady-state calls do not allocate.
func (g *Gray) BoxBlur(radius, iterations int) {
	if radius <= 0 || iterations <= 0 {
		return
	}
	scratch := blurScratchPool.Get().(*blurScratch)
	defer blurScratchPool.Put(scratch)
	scratch.ensure(len(g.Pix))
	tmp := scratch.tmp
	cur := scratch.cur
	for i, p := range g.Pix {
		cur[i] = float64(p)
	}
	for it := 0; it < iterations; it++ {
		// Horizontal pass.
		for y := 0; y < g.H; y++ {
			row := y * g.W
			var sum float64
			cnt := 0
			for x := -radius; x <= radius; x++ {
				if x >= 0 && x < g.W {
					sum += cur[row+x]
					cnt++
				}
			}
			for x := 0; x < g.W; x++ {
				tmp[row+x] = sum / float64(cnt)
				if add := x + radius + 1; add < g.W {
					sum += cur[row+add]
					cnt++
				}
				if del := x - radius; del >= 0 {
					sum -= cur[row+del]
					cnt--
				}
			}
		}
		// Vertical pass.
		for x := 0; x < g.W; x++ {
			var sum float64
			cnt := 0
			for y := -radius; y <= radius; y++ {
				if y >= 0 && y < g.H {
					sum += tmp[y*g.W+x]
					cnt++
				}
			}
			for y := 0; y < g.H; y++ {
				cur[y*g.W+x] = sum / float64(cnt)
				if add := y + radius + 1; add < g.H {
					sum += tmp[add*g.W+x]
					cnt++
				}
				if del := y - radius; del >= 0 {
					sum -= tmp[del*g.W+x]
					cnt--
				}
			}
		}
	}
	for i := range g.Pix {
		g.Pix[i] = clampU8(cur[i])
	}
}

// AddGaussianNoise adds zero-mean Gaussian noise with the given standard
// deviation (in intensity units), clamping to [0, 255].
func (g *Gray) AddGaussianNoise(rng *rand.Rand, sigma float64) {
	if sigma <= 0 || rng == nil {
		return
	}
	for i := range g.Pix {
		g.Pix[i] = clampU8(float64(g.Pix[i]) + rng.NormFloat64()*sigma)
	}
}

// AddSaltPepper flips the given fraction of pixels to 0 or 255.
func (g *Gray) AddSaltPepper(rng *rand.Rand, frac float64) {
	if frac <= 0 || rng == nil {
		return
	}
	n := int(frac * float64(len(g.Pix)))
	for i := 0; i < n; i++ {
		idx := rng.Intn(len(g.Pix))
		if rng.Intn(2) == 0 {
			g.Pix[idx] = 0
		} else {
			g.Pix[idx] = 255
		}
	}
}

// Downsample returns the image reduced by an integer factor using box
// averaging. factor <= 1 returns a clone.
func (g *Gray) Downsample(factor int) *Gray {
	if factor <= 1 {
		return g.Clone()
	}
	w := g.W / factor
	h := g.H / factor
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	out := &Gray{W: w, H: h, Pix: make([]uint8, w*h)}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var sum, cnt int
			for dy := 0; dy < factor; dy++ {
				for dx := 0; dx < factor; dx++ {
					sx, sy := x*factor+dx, y*factor+dy
					if sx < g.W && sy < g.H {
						sum += int(g.Pix[sy*g.W+sx])
						cnt++
					}
				}
			}
			out.Pix[y*w+x] = uint8(sum / cnt)
		}
	}
	return out
}

// PGM encodes the image as a binary PGM (P5) file body, for debugging dumps.
func (g *Gray) PGM() []byte {
	header := fmt.Sprintf("P5\n%d %d\n255\n", g.W, g.H)
	out := make([]byte, 0, len(header)+len(g.Pix))
	out = append(out, header...)
	out = append(out, g.Pix...)
	return out
}

// ASCII renders the image as character art (one char per cell after
// downsampling to at most maxW columns), for terminal diagnostics.
func (g *Gray) ASCII(maxW int) string {
	img := g
	if maxW > 0 && g.W > maxW {
		img = g.Downsample((g.W + maxW - 1) / maxW)
	}
	const ramp = " .:-=+*#%@"
	var sb strings.Builder
	for y := 0; y < img.H; y += 2 { // chars are ~2:1 tall
		for x := 0; x < img.W; x++ {
			v := int(img.Pix[y*img.W+x])
			sb.WriteByte(ramp[v*(len(ramp)-1)/255])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func clampU8(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v + 0.5)
}

// sortFloats is insertion sort: crossing counts per scanline are tiny, and
// avoiding sort.Float64s keeps the hot path allocation-free.
func sortFloats(x []float64) {
	for i := 1; i < len(x); i++ {
		v := x[i]
		j := i - 1
		for j >= 0 && x[j] > v {
			x[j+1] = x[j]
			j--
		}
		x[j+1] = v
	}
}
