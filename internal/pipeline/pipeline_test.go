package pipeline

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"hdc/internal/body"
	"hdc/internal/raster"
	"hdc/internal/recognizer"
	"hdc/internal/scene"
)

// newRecognizer builds a calibrated recogniser and renderer for tests.
func newRecognizer(t testing.TB) (*recognizer.Recognizer, *scene.Renderer) {
	t.Helper()
	rec, err := recognizer.New(recognizer.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rend := scene.NewRenderer(scene.Config{Width: 128, Height: 128})
	if err := rec.BuildReferences(rend, scene.ReferenceView()); err != nil {
		t.Fatal(err)
	}
	return rec, rend
}

// renderSigns renders one frame per sign at slightly different azimuths so
// consecutive frames have distinguishable expected results.
func renderSigns(t testing.TB, rend *scene.Renderer, n int) ([]*raster.Gray, []body.Sign) {
	t.Helper()
	signs := body.AllSigns()
	frames := make([]*raster.Gray, n)
	expect := make([]body.Sign, n)
	for i := 0; i < n; i++ {
		s := signs[i%len(signs)]
		v := scene.ReferenceView()
		v.AzimuthDeg = float64((i * 7) % 30)
		f, err := rend.Render(s, v, body.Options{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		frames[i] = f
		expect[i] = s
	}
	return frames, expect
}

// TestStreamOrdering8Producers drives eight concurrent streams through a
// small pool and asserts every stream receives its own results strictly in
// submission order, with each result matching what a sequential Recognize
// of the same frame produces.
func TestStreamOrdering8Producers(t *testing.T) {
	rec, rend := newRecognizer(t)
	const producers = 8
	const perStream = 12

	frames, _ := renderSigns(t, rend, perStream)
	// Sequential ground truth per frame index.
	want := make([]recognizer.Result, perStream)
	for i, f := range frames {
		r, err := rec.Recognize(f)
		if err != nil && !errors.Is(err, recognizer.ErrNoSign) {
			t.Fatal(err)
		}
		want[i] = r
	}

	p, err := New(rec, Config{Workers: 4, QueueDepth: 4, StreamWindow: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var wg sync.WaitGroup
	errCh := make(chan error, producers)
	for s := 0; s < producers; s++ {
		st, err := p.NewStream()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(2)
		// Producer: submits the shared frame sequence.
		go func() {
			defer wg.Done()
			defer st.Close()
			for _, f := range frames {
				if err := st.Submit(f); err != nil {
					errCh <- fmt.Errorf("submit: %w", err)
					return
				}
			}
		}()
		// Consumer: asserts in-order delivery and per-frame correctness.
		go func() {
			defer wg.Done()
			next := uint64(0)
			for r := range st.Results() {
				if r.Seq != next {
					errCh <- fmt.Errorf("out of order: got seq %d, want %d", r.Seq, next)
					return
				}
				w := want[r.Seq]
				if r.Res.OK != w.OK || r.Res.Sign != w.Sign || r.Res.Label != w.Label {
					errCh <- fmt.Errorf("seq %d: got (%v %v %q), want (%v %v %q)",
						r.Seq, r.Res.OK, r.Res.Sign, r.Res.Label, w.OK, w.Sign, w.Label)
					return
				}
				next++
			}
			if next != perStream {
				errCh <- fmt.Errorf("stream delivered %d/%d results", next, perStream)
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestRecognizeBatchMatchesSequential checks the batch API returns results
// in input order identical to the sequential path.
func TestRecognizeBatchMatchesSequential(t *testing.T) {
	rec, rend := newRecognizer(t)
	frames, _ := renderSigns(t, rend, 10)

	p, err := New(rec, Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	results, errs, err := p.RecognizeBatch(frames)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(frames) || len(errs) != len(frames) {
		t.Fatalf("batch sizes: %d results, %d errs for %d frames", len(results), len(errs), len(frames))
	}
	for i, f := range frames {
		want, werr := rec.Recognize(f)
		if (werr == nil) != (errs[i] == nil) && !errors.Is(errs[i], recognizer.ErrNoSign) {
			t.Fatalf("frame %d: err %v, want %v", i, errs[i], werr)
		}
		if results[i].OK != want.OK || results[i].Sign != want.Sign {
			t.Fatalf("frame %d: got (%v %v), want (%v %v)",
				i, results[i].OK, results[i].Sign, want.OK, want.Sign)
		}
	}
}

// TestSubmitAfterCloseFails covers stream and pipeline shutdown semantics.
func TestSubmitAfterCloseFails(t *testing.T) {
	rec, rend := newRecognizer(t)
	frames, _ := renderSigns(t, rend, 1)

	p, err := New(rec, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Submit(frames[0]); err != nil {
		t.Fatal(err)
	}
	st.Close()
	if err := st.Submit(frames[0]); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("submit after stream close: %v", err)
	}
	// The accepted frame still arrives, then the channel closes.
	n := 0
	for range st.Results() {
		n++
	}
	if n != 1 {
		t.Fatalf("drained %d results, want 1", n)
	}

	p.Close()
	if _, err := p.NewStream(); !errors.Is(err, ErrClosed) {
		t.Fatalf("NewStream after close: %v", err)
	}
	p.Close() // idempotent
}

// TestNilFrameRejected guards the nil-frame fast failure.
func TestNilFrameRejected(t *testing.T) {
	rec, _ := newRecognizer(t)
	p, err := New(rec, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	st, err := p.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Submit(nil); !errors.Is(err, ErrNilFrame) {
		t.Fatalf("nil frame: %v", err)
	}
}

// TestAbandonReleasesAbandonedStream wedges the pool on a stream nobody
// reads, then checks Abandon unblocks everything and the Results channel
// still closes — the disconnected-client path.
func TestAbandonReleasesAbandonedStream(t *testing.T) {
	rec, rend := newRecognizer(t)
	frames, _ := renderSigns(t, rend, 1)
	p, err := New(rec, Config{Workers: 2, QueueDepth: 2, StreamWindow: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	st, err := p.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	submitDone := make(chan error, 1)
	go func() {
		var lastErr error
		for i := 0; i < 16; i++ {
			if err := st.Submit(frames[0]); err != nil {
				lastErr = err
				break
			}
		}
		submitDone <- lastErr
	}()
	time.Sleep(100 * time.Millisecond) // let the unread stream wedge the pool
	st.Abandon()
	if err := <-submitDone; err != nil && !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("submit after abandon: %v", err)
	}
	deadline := time.After(10 * time.Second)
	for {
		select {
		case _, ok := <-st.Results():
			if !ok {
				return // channel closed: stream fully released
			}
		case <-deadline:
			t.Fatal("Results did not close after Abandon")
		}
	}
}

// TestAbandonRecyclesPooledFrames is the regression test for the pooled-
// frame leak: results dropped on the abandon path (and results stranded in
// the delivery buffer) carry frames a producer checked out of a pool; the
// drop hook must hand every one of them back. Before the hook existed, each
// abandoned stream leaked up to a window of pooled buffers.
func TestAbandonRecyclesPooledFrames(t *testing.T) {
	rec, _ := newRecognizer(t)
	p, err := New(rec, Config{Workers: 2, QueueDepth: 2, StreamWindow: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var pool raster.Pool
	st, err := p.NewProcStream(func(sc *recognizer.Scratch, seq uint64, frame *raster.Gray) (recognizer.Result, error) {
		return recognizer.Result{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st.SetDropHook(pool.Put)

	// Submit a full window of pooled frames and never read a single result.
	const n = 4
	for i := 0; i < n; i++ {
		if err := st.Submit(pool.Get(8, 8)); err != nil {
			t.Fatal(err)
		}
	}
	st.Abandon()
	deadline := time.Now().Add(10 * time.Second)
	for {
		gets, puts := pool.Stats()
		if gets == n && puts == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("abandoned stream leaked frames: %d gets, %d puts", gets, puts)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestProcStreamOrdering checks a custom per-frame stage sees every frame
// with its stream sequence number and that delivery order still holds.
func TestProcStreamOrdering(t *testing.T) {
	rec, _ := newRecognizer(t)
	p, err := New(rec, Config{Workers: 4, QueueDepth: 4, StreamWindow: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const n = 32
	seen := make([]uint8, n) // indexed by seq, written by workers pre-delivery
	st, err := p.NewProcStream(func(sc *recognizer.Scratch, seq uint64, frame *raster.Gray) (recognizer.Result, error) {
		if sc == nil || sc.Vision() == nil {
			return recognizer.Result{}, errors.New("no scratch")
		}
		seen[seq] = frame.Pix[0]
		return recognizer.Result{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		defer st.Close()
		for i := 0; i < n; i++ {
			g, _ := raster.NewGray(4, 4)
			g.Pix[0] = uint8(i)
			if err := st.Submit(g); err != nil {
				return
			}
		}
	}()
	next := uint64(0)
	for r := range st.Results() {
		if r.Seq != next {
			t.Fatalf("out of order: got %d, want %d", r.Seq, next)
		}
		if r.Err != nil {
			t.Fatalf("seq %d: %v", r.Seq, r.Err)
		}
		// The worker's write to seen[seq] happens before this delivery.
		if seen[r.Seq] != uint8(r.Seq) {
			t.Fatalf("proc saw frame %d at seq %d", seen[r.Seq], r.Seq)
		}
		next++
	}
	if next != n {
		t.Fatalf("delivered %d/%d", next, n)
	}
	if _, err := p.NewProcStream(nil); err == nil {
		t.Fatal("nil proc accepted")
	}
}

// TestBatchRejectsNilFrame pins the up-front validation: a nil frame fails
// the whole batch explicitly instead of surfacing as ErrClosed mid-way.
func TestBatchRejectsNilFrame(t *testing.T) {
	rec, rend := newRecognizer(t)
	frames, _ := renderSigns(t, rend, 2)
	p, err := New(rec, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, _, err := p.RecognizeBatch([]*raster.Gray{frames[0], nil, frames[1]}); !errors.Is(err, ErrNilFrame) {
		t.Fatalf("nil frame in batch: %v", err)
	}
}

// TestEmptyBatch covers the zero-length fast path.
func TestEmptyBatch(t *testing.T) {
	rec, _ := newRecognizer(t)
	p, err := New(rec, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	results, errs, err := p.RecognizeBatch(nil)
	if err != nil || len(results) != 0 || len(errs) != 0 {
		t.Fatalf("empty batch: %v %v %v", results, errs, err)
	}
}
