// Package pipeline is the streaming frame-recognition service layered over
// internal/recognizer: frames arrive from any number of concurrent sources
// (one Stream per source — a camera, a drone, a client connection), fan out
// over a fixed pool of recognition workers, and come back to each source as
// an ordered sequence of recognizer.Results.
//
// The design follows the executor pattern of dataflow robotic middlewares
// (DORA, the ROS 2 executor model): explicit stages with pooled buffers and
// a parallel executor between them. Each worker owns a recognizer.Scratch,
// so the steady state performs no per-frame vision allocations; ordering is
// restored per stream by sequence number, so parallelism never reorders one
// source's results; and back-pressure is end-to-end — a stream bounds its
// in-flight frames and a full worker queue blocks Submit, never a worker.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"hdc/internal/failpoint"
	"hdc/internal/raster"
	"hdc/internal/recognizer"
	"hdc/internal/trace"
)

// Config sizes the worker pool.
type Config struct {
	// Workers is the number of recognition goroutines (default
	// runtime.NumCPU()).
	Workers int
	// QueueDepth is the capacity of the shared frame queue feeding the
	// workers (default 2×Workers). A full queue blocks Submit.
	QueueDepth int
	// StreamWindow bounds each stream's in-flight frames — submitted but not
	// yet delivered to its Results channel (default 2×Workers). The window
	// is what keeps one unconsumed stream from buffering unboundedly while
	// letting the pool stay busy.
	StreamWindow int
	// TraceBuffer is the per-worker capacity of the frame-trace ring buffers
	// (default trace.DefaultBuffer, rounded up to a power of two). Tracing is
	// always compiled in and armed by default; use Tracer().Disarm to reduce
	// it to one atomic load per frame.
	TraceBuffer int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.StreamWindow <= 0 {
		c.StreamWindow = 2 * c.Workers
	}
	return c
}

// Errors returned by the pipeline.
var (
	ErrClosed       = errors.New("pipeline: closed")
	ErrStreamClosed = errors.New("pipeline: stream closed")
	ErrNilFrame     = errors.New("pipeline: nil frame")

	errNilProc = errors.New("pipeline: nil proc")
)

// job is one frame travelling through the pool. The trace handle rides with
// the frame so every goroutine that touches it stamps the same record.
type job struct {
	st    *Stream
	seq   uint64
	frame *raster.Gray
	tr    trace.Handle
}

// Pipeline is the worker pool. Construct with New, create one Stream per
// frame source, and Close when done — or share it across several systems by
// handing each an Attach'd Owner, in which case the last Owner.Close drains
// the pool instead (see owner.go for the reference-counting contract). All
// methods are safe for concurrent use.
type Pipeline struct {
	cfg    Config
	rec    *recognizer.Recognizer
	in     chan job
	wg     sync.WaitGroup
	tracer *trace.Tracer

	// Live-feed ingest totals, aggregated across every Source ever attached
	// to this pipeline's streams (see Source); exported via Stats.
	ingestAccepted atomic.Uint64
	ingestDropped  atomic.Uint64

	mu      sync.RWMutex // guards closed + streams + owners; RLock spans queue sends
	closed  bool
	streams map[*Stream]struct{}

	// Reference-counting state (owner.go). Once everAttached is set, the
	// owners map is the pool's reference count: emptying it closes the pool.
	owners       map[*Owner]struct{}
	everAttached bool
	ownerSeq     int // labels anonymous owners
}

// New builds a pipeline over rec, whose reference database must already be
// populated (the recogniser is documented concurrency-safe for recognition
// after setup). The worker goroutines start immediately.
func New(rec *recognizer.Recognizer, cfg Config) (*Pipeline, error) {
	if rec == nil {
		return nil, errors.New("pipeline: nil recognizer")
	}
	cfg = cfg.withDefaults()
	p := &Pipeline{
		cfg:     cfg,
		rec:     rec,
		in:      make(chan job, cfg.QueueDepth),
		tracer:  trace.New(cfg.Workers, cfg.TraceBuffer),
		streams: make(map[*Stream]struct{}),
		owners:  make(map[*Owner]struct{}),
	}
	p.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go p.worker()
	}
	return p, nil
}

// Config returns the effective configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// Tracer returns the pipeline's per-frame flight recorder: every frame the
// pool touches stamps its stage boundaries into it, /tracez serves its
// snapshots, and Disarm/Arm toggle recording at runtime.
func (p *Pipeline) Tracer() *trace.Tracer { return p.tracer }

// Stats is a point-in-time snapshot of pool occupancy, the load signal the
// service layer exports on /statsz: how deep the shared queue is, how many
// streams hold capacity, and whether the pool is draining.
type Stats struct {
	Workers      int  // recognition goroutines
	QueueLen     int  // frames waiting in the shared queue right now
	QueueCap     int  // shared queue capacity
	Streams      int  // registered streams (batches hold one each while running)
	StreamWindow int  // per-stream in-flight frame bound
	Closed       bool // true once Close has begun
	// IngestAccepted and IngestDropped total the frames offered to (and
	// evicted from) the live-feed ring buffers in front of this pipeline's
	// streams (see Source). A growing dropped count under load is the ingest
	// layer working as designed: capture cadence held, excess frames shed.
	IngestAccepted uint64
	IngestDropped  uint64
	// Attached is the pool's current reference count — the number of owners
	// (systems) sharing it via Attach; zero for a pool used directly.
	Attached int
	// Owners attributes the pool's traffic per attachment, sorted by label
	// (ties broken by attach order). Detached owners no longer appear; their
	// traffic remains in the pool-wide aggregates above.
	Owners []OwnerStats
}

// Stats returns the current occupancy snapshot. Safe for concurrent use.
func (p *Pipeline) Stats() Stats {
	p.mu.RLock()
	s := Stats{
		Workers:        p.cfg.Workers,
		QueueLen:       len(p.in),
		QueueCap:       cap(p.in),
		Streams:        len(p.streams),
		StreamWindow:   p.cfg.StreamWindow,
		Closed:         p.closed,
		IngestAccepted: p.ingestAccepted.Load(),
		IngestDropped:  p.ingestDropped.Load(),
		Attached:       len(p.owners),
	}
	owners := make([]*Owner, 0, len(p.owners))
	for o := range p.owners {
		owners = append(owners, o)
	}
	p.mu.RUnlock()

	sort.Slice(owners, func(i, j int) bool {
		if owners[i].label != owners[j].label {
			return owners[i].label < owners[j].label
		}
		return owners[i].seq < owners[j].seq
	})
	for _, o := range owners {
		s.Owners = append(s.Owners, o.Stats())
	}
	return s
}

// worker is one recognition lane: it owns its scratch state for the life of
// the pipeline and drains the shared queue. Streams carrying a custom Proc
// run it in place of sign recognition, on the same scratch.
func (p *Pipeline) worker() {
	defer p.wg.Done()
	sc := recognizer.NewScratch()
	for j := range p.in {
		var res recognizer.Result
		deq := j.tr.Stamp(trace.StageDequeue)
		// The worker-dispatch failpoint: a delay policy slows the lane (the
		// overload generator for the chaos suite and E23), an error policy
		// completes the frame with the injected error without running the
		// stage.
		err := failpoint.Inject(failpoint.PipelineWorker)
		if err == nil {
			if j.st.proc != nil {
				res, err = j.st.proc(sc, j.seq, j.frame)
				// A custom proc is one opaque stage; the whole call counts as
				// classification.
				j.tr.Stamp(trace.StageClassify)
			} else {
				res, err = p.rec.RecognizeWith(sc, j.frame)
				// The recogniser already measured its internal stages; replay
				// its timings as cumulative offsets from the dequeue stamp so
				// the trace's binarize/features/classify spans are the
				// recogniser's own numbers, not a second clock.
				t := res.Timings
				bin := deq + int64(t.Threshold+t.Morph)
				feat := bin + int64(t.Contour+t.Encode)
				j.tr.StampAt(trace.StageBinarize, bin)
				j.tr.StampAt(trace.StageFeatures, feat)
				j.tr.StampAt(trace.StageClassify, feat+int64(t.Match))
			}
		}
		j.st.complete(j.seq, j.frame, j.tr, res, err)
	}
}

// enqueue places a job on the worker queue, failing once the pipeline is
// closed. The read lock spans the send so Close cannot close the channel
// under an in-flight send.
func (p *Pipeline) enqueue(j job) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	p.in <- j
	return nil
}

// enqueueCtx is enqueue with a deadline: a send blocked on a full worker
// queue gives up when ctx expires instead of waiting indefinitely.
func (p *Pipeline) enqueueCtx(ctx context.Context, j job) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	select {
	case p.in <- j:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// QueueDepth reports the shared worker queue's current occupancy and
// capacity — the overload signal the server's admission control watches.
// Cheaper than Stats (no lock, no owner snapshot), safe for concurrent use.
func (p *Pipeline) QueueDepth() (queued, capacity int) { return len(p.in), cap(p.in) }

// NewStream registers a new frame source and returns its stream. Streams
// are independent: each delivers its results in submission order on its own
// Results channel regardless of how the pool interleaves the work.
func (p *Pipeline) NewStream() (*Stream, error) { return p.register(nil) }

// Proc is a custom per-frame stage run on the pool's workers in place of
// sign recognition — the dataflow-executor hook that lets other perception
// workloads (the gesture feature extractor) share the pool, its scratch
// state and its ordering/back-pressure machinery. A Proc is called from many
// worker goroutines, one frame at a time per worker; per-frame state must be
// keyed on seq (sequence numbers are unique per stream) and the scratch is
// owned by the calling worker for the duration of the call.
type Proc func(sc *recognizer.Scratch, seq uint64, frame *raster.Gray) (recognizer.Result, error)

// NewProcStream is NewStream for a custom per-frame stage: every frame
// submitted to the returned stream runs proc instead of the recogniser, with
// the same ordered delivery and back-pressure.
func (p *Pipeline) NewProcStream(proc Proc) (*Stream, error) {
	if proc == nil {
		return nil, errNilProc
	}
	return p.register(proc)
}

// register creates and tracks a stream with no owner attribution.
func (p *Pipeline) register(proc Proc) (*Stream, error) { return p.registerOwned(proc, nil) }

// registerOwned creates and tracks a stream, attributing it to owner when
// non-nil. The closed check, the owner's detached check and the stream's
// registration share one critical section with Close and the last detach, so
// a stream either registers on a live pool or fails with ErrClosed — a late
// NewStream can never race a concurrent shutdown into a half-registered
// stream or a leaked delivery goroutine.
func (p *Pipeline) registerOwned(proc Proc, owner *Owner) (*Stream, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || (owner != nil && owner.detached) {
		return nil, ErrClosed
	}
	st := newStream(p)
	st.proc = proc
	st.owner = owner
	if owner != nil {
		st.traceOwner = p.tracer.LabelID(owner.label)
	}
	p.streams[st] = struct{}{}
	if owner != nil {
		owner.streams.Add(1)
		owner.streamsTotal.Add(1)
	}
	go st.emit()
	return st, nil
}

// beginCloseLocked flips the pipeline into its closed state and returns the
// streams that still need closing, or nil if it was already closed. Owners
// still attached are force-detached so a closed pool never reports live
// tenants (their Close calls become no-ops). The caller must hold p.mu
// (write) and, on a non-nil return, close the returned streams and wait on
// p.wg after releasing it.
func (p *Pipeline) beginCloseLocked() []*Stream {
	if p.closed {
		return nil
	}
	p.closed = true
	close(p.in)
	for o := range p.owners {
		o.detached = true
		delete(p.owners, o)
	}
	open := make([]*Stream, 0, len(p.streams))
	for st := range p.streams {
		open = append(open, st)
	}
	return open
}

// Close shuts the pipeline down: further Submits fail with ErrClosed,
// already-queued frames are recognised, every stream's Results channel is
// closed after its in-flight frames drain, and the workers exit. Close
// blocks until the workers have stopped and is idempotent. On a shared
// (Attach'd) pool, Close is the force-close escape hatch — process shutdown
// — that overrides the reference count; the cooperative path is each owner
// closing its own handle.
func (p *Pipeline) Close() {
	p.mu.Lock()
	open := p.beginCloseLocked()
	p.mu.Unlock()
	if open == nil {
		return
	}
	for _, st := range open {
		st.Close()
	}
	p.wg.Wait()
}

// RecognizeBatch pushes a batch of frames through the pool and returns the
// results in input order, with one error slot per frame (nil for an accepted
// sign, recognizer.ErrNoSign or a vision error otherwise). It is the
// synchronous convenience over a private stream; concurrent batches simply
// share the pool.
func (p *Pipeline) RecognizeBatch(frames []*raster.Gray) ([]recognizer.Result, []error, error) {
	return recognizeBatch(p.NewStream, frames)
}

// recognizeBatch runs the ordered-batch convenience over a stream from
// newStream — the one implementation behind Pipeline.RecognizeBatch and
// Owner.RecognizeBatch, so owner-attributed batches cannot drift from the
// direct path.
func recognizeBatch(newStream func() (*Stream, error), frames []*raster.Gray) ([]recognizer.Result, []error, error) {
	// Validate up front: a nil frame mid-batch would otherwise break the
	// index↔sequence correspondence and surface as a misleading ErrClosed.
	for _, f := range frames {
		if f == nil {
			return nil, nil, ErrNilFrame
		}
	}
	results := make([]recognizer.Result, len(frames))
	errs := make([]error, len(frames))
	if len(frames) == 0 {
		return results, errs, nil
	}
	st, err := newStream()
	if err != nil {
		return nil, nil, err
	}
	go func() {
		defer st.Close()
		for _, f := range frames {
			if err := st.Submit(f); err != nil {
				return // remaining frames surface as ErrClosed below
			}
		}
	}()
	seen := make([]bool, len(frames))
	for r := range st.Results() {
		if r.Seq >= uint64(len(frames)) {
			continue
		}
		results[r.Seq] = r.Res
		errs[r.Seq] = r.Err
		seen[r.Seq] = true
	}
	for i := range seen {
		if !seen[i] {
			errs[i] = ErrClosed
		}
	}
	return results, errs, nil
}

// RecognizeBatchContext is RecognizeBatch with a deadline and pooled-buffer
// recycling: when ctx expires mid-batch the call returns promptly with the
// results completed so far, the remaining slots' errors set to ctx.Err(),
// and the stream abandoned so in-flight frames drain in the background.
//
// Because frames may still be under a worker when the deadline fires, the
// caller must hand ownership of every frame to the call: recycle (which may
// be nil) is invoked exactly once per frame — synchronously for delivered
// results and never-submitted frames, from the drain goroutine for frames
// dropped by the abandon — and the caller must not touch the frames after
// the call. On a non-nil top-level error no frame was consumed and the
// caller keeps them all.
func (p *Pipeline) RecognizeBatchContext(ctx context.Context, frames []*raster.Gray, recycle func(*raster.Gray)) ([]recognizer.Result, []error, error) {
	return recognizeBatchContext(ctx, p.NewStream, frames, recycle)
}

// recognizeBatchContext is the deadline-aware sibling of recognizeBatch,
// shared by Pipeline.RecognizeBatchContext and Owner.RecognizeBatchContext.
func recognizeBatchContext(ctx context.Context, newStream func() (*Stream, error), frames []*raster.Gray, recycle func(*raster.Gray)) ([]recognizer.Result, []error, error) {
	for _, f := range frames {
		if f == nil {
			return nil, nil, ErrNilFrame
		}
	}
	results := make([]recognizer.Result, len(frames))
	errs := make([]error, len(frames))
	if len(frames) == 0 {
		return results, errs, nil
	}
	st, err := newStream()
	if err != nil {
		return nil, nil, err
	}
	if recycle != nil {
		st.SetDropHook(recycle)
	}
	go func() {
		defer st.Close()
		for i, f := range frames {
			claimed, err := st.SubmitContext(ctx, f)
			if err != nil {
				// Claimed frames surface as results; everything after this
				// point never entered the stream, so recycle it here.
				rest := i
				if claimed {
					rest = i + 1
				}
				if recycle != nil {
					for _, g := range frames[rest:] {
						recycle(g)
					}
				}
				return
			}
		}
	}()
	seen := make([]bool, len(frames))
	done := ctx.Done()
collect:
	for {
		select {
		case r, ok := <-st.Results():
			if !ok {
				break collect
			}
			if r.Seq < uint64(len(frames)) {
				results[r.Seq] = r.Res
				errs[r.Seq] = r.Err
				seen[r.Seq] = true
			}
			if recycle != nil && r.Frame != nil {
				recycle(r.Frame)
			}
		case <-done:
			// Deadline: stop waiting. Abandon turns the undelivered remainder
			// into drop-hook recycles and lets slow workers finish in the
			// background rather than on the caller's clock.
			st.Abandon()
			break collect
		}
	}
	for i := range seen {
		if !seen[i] {
			if cerr := ctx.Err(); cerr != nil {
				errs[i] = cerr
			} else {
				errs[i] = ErrClosed
			}
		}
	}
	return results, errs, nil
}

// StreamResult is one delivered recognition: the submitted frame (returned
// so callers can recycle pooled buffers), its sequence number within the
// stream, and the recogniser's verdict.
type StreamResult struct {
	Seq   uint64
	Frame *raster.Gray
	Res   recognizer.Result
	Err   error // nil, recognizer.ErrNoSign, a vision error, or ErrClosed

	tr trace.Handle // the frame's trace, finished at delivery or drop
}

// Stream is one ordered frame source. Submit and Close are safe for
// concurrent use, though a stream's ordering is only meaningful to whoever
// chose the submission order.
type Stream struct {
	p          *Pipeline
	proc       Proc   // nil: the default sign-recognition stage
	owner      *Owner // nil: opened directly on the Pipeline, unattributed
	traceOwner uint32 // interned owner label for trace attribution

	mu       sync.Mutex
	cond     *sync.Cond
	pending  map[uint64]StreamResult
	dropHook func(*raster.Gray) // under mu; receives frames of dropped results
	nextSeq  uint64             // next sequence number to assign
	nextEmit uint64             // next sequence number to deliver
	inflight int
	closed   bool

	out         chan StreamResult
	abandoned   chan struct{} // closed by Abandon: drop undelivered results
	abandonOnce sync.Once
}

func newStream(p *Pipeline) *Stream {
	st := &Stream{
		p:         p,
		pending:   make(map[uint64]StreamResult),
		out:       make(chan StreamResult, p.cfg.StreamWindow),
		abandoned: make(chan struct{}),
	}
	st.cond = sync.NewCond(&st.mu)
	return st
}

// Submit hands one frame to the pool. It blocks while the stream is at its
// in-flight window or the worker queue is full (back-pressure), and fails
// with ErrStreamClosed/ErrClosed once the stream or pipeline is closed. The
// frame must not be mutated until it comes back in a StreamResult.
//
// A nil frame is rejected on recognition streams (the recogniser needs
// pixels) but accepted on proc streams: a custom stage may carry its payload
// out of band keyed on seq — the graph runtime's non-vision workloads (LED
// rings, IMU windows, trajectories) dispatch exactly that way — and its Proc
// must therefore tolerate a nil frame argument.
func (s *Stream) Submit(frame *raster.Gray) error { return s.submit(frame, trace.Handle{}) }

// submit is Submit carrying an optional trace handle begun upstream (the
// ingest ring's Offer stamp); frames arriving without one begin their trace
// at the enqueue boundary.
func (s *Stream) submit(frame *raster.Gray, h trace.Handle) error {
	if frame == nil && s.proc == nil {
		return ErrNilFrame
	}
	s.mu.Lock()
	for s.inflight >= s.p.cfg.StreamWindow && !s.closed {
		s.cond.Wait()
	}
	if s.closed {
		s.mu.Unlock()
		return ErrStreamClosed
	}
	seq := s.nextSeq
	s.nextSeq++
	s.inflight++
	s.mu.Unlock()

	h = s.traceEnqueue(h)
	if err := s.p.enqueue(job{st: s, seq: seq, frame: frame, tr: h}); err != nil {
		// The sequence number is already claimed; deliver the failure as a
		// result so the stream's ordering has no hole.
		s.complete(seq, frame, h, recognizer.Result{}, err)
		return err
	}
	return nil
}

// traceEnqueue stamps the enqueue boundary, beginning the trace first for
// frames that did not pass through an ingest ring.
func (s *Stream) traceEnqueue(h trace.Handle) trace.Handle {
	if !h.Active() {
		h = s.p.tracer.Begin(s.traceOwner)
	}
	h.Stamp(trace.StageEnqueue)
	return h
}

// SubmitContext is Submit with a deadline: both waits — the stream's
// in-flight window and a full worker queue — give up when ctx expires, so a
// stalled pool bounds the caller's latency instead of wedging it. The
// claimed return says who owns the frame on error: false means the frame
// never entered the stream's sequence and the caller keeps it; true means
// its result (possibly an error result) will be delivered like any other —
// exactly Submit's ErrClosed convention. A ctx with no deadline or
// cancellation behaves identically to Submit.
func (s *Stream) SubmitContext(ctx context.Context, frame *raster.Gray) (claimed bool, err error) {
	if ctx.Done() == nil {
		err := s.Submit(frame)
		return err == nil || errors.Is(err, ErrClosed), err
	}
	if frame == nil && s.proc == nil {
		return false, ErrNilFrame
	}
	if err := ctx.Err(); err != nil {
		return false, err
	}
	// AfterFunc pokes the cond so a Submit parked on the window wakes up and
	// notices the expired context.
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()

	s.mu.Lock()
	for s.inflight >= s.p.cfg.StreamWindow && !s.closed && ctx.Err() == nil {
		s.cond.Wait()
	}
	if s.closed {
		s.mu.Unlock()
		return false, ErrStreamClosed
	}
	if err := ctx.Err(); err != nil {
		s.mu.Unlock()
		return false, err
	}
	seq := s.nextSeq
	s.nextSeq++
	s.inflight++
	s.mu.Unlock()

	h := s.traceEnqueue(trace.Handle{})
	if err := s.p.enqueueCtx(ctx, job{st: s, seq: seq, frame: frame, tr: h}); err != nil {
		// Claimed: deliver the failure as a result so ordering has no hole.
		s.complete(seq, frame, h, recognizer.Result{}, err)
		return true, err
	}
	return true, nil
}

// Window returns the stream's in-flight frame bound (the pipeline's
// StreamWindow): at most Window frames are submitted-but-unemitted at any
// time, and at most another Window sit in the delivery buffer. Consumers
// sizing seq-indexed state (the gesture feature slab) derive it from this.
func (s *Stream) Window() int { return s.p.cfg.StreamWindow }

// Results is the stream's ordered delivery channel. It closes after Close
// once every in-flight frame has been delivered. Consumers must either
// drain the channel or call Abandon — a stream whose consumer silently
// stops reading parks its delivery goroutine.
func (s *Stream) Results() <-chan StreamResult { return s.out }

// Close marks the stream complete: further Submits fail, and Results closes
// once in-flight frames drain. Close never discards accepted work.
func (s *Stream) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// SetDropHook registers fn to receive the frame of every result this stream
// discards instead of delivering — the Abandon path — so pooled frame
// buffers checked out by the producer can be recycled rather than leaked
// (one reaped session used to strand up to a window of pooled buffers).
// Set it before the first Submit; fn may be called from the stream's
// delivery goroutine and must be safe for that.
func (s *Stream) SetDropHook(fn func(*raster.Gray)) {
	s.mu.Lock()
	s.dropHook = fn
	s.mu.Unlock()
}

// dropResult recycles one discarded result's frame through the drop hook
// and closes its trace with the abandon terminal. A result that was already
// finished — delivered before the consumer walked away — keeps its deliver
// terminal (Finish is exactly-once).
func (s *Stream) dropResult(r StreamResult) {
	r.tr.Finish(trace.TerminalAbandon)
	s.mu.Lock()
	fn := s.dropHook
	s.mu.Unlock()
	if fn != nil && r.Frame != nil {
		fn(r.Frame)
	}
}

// Abandon is Close for a consumer that is gone (a disconnected client):
// undelivered and in-flight results are dropped instead of delivered, so
// the stream's resources are released even though nobody reads Results.
// The channel still closes once the drop-drain finishes. Results already
// buffered are drained through the drop hook too; a consumer that is in
// fact still reading Results merely splits the remainder with that drain —
// each result reaches exactly one of the two, every dropped one through
// the hook — which is what lets gesture.Live abandon under its own live
// collector, both sides recycling through the same hook.
func (s *Stream) Abandon() {
	s.abandonOnce.Do(func() {
		close(s.abandoned)
		go func() {
			for r := range s.out {
				s.dropResult(r)
			}
		}()
	})
	s.Close()
}

// complete records one finished frame; called by workers and by Submit on
// enqueue failure.
func (s *Stream) complete(seq uint64, frame *raster.Gray, h trace.Handle, res recognizer.Result, err error) {
	if s.owner != nil {
		s.owner.frames.Add(1)
	}
	s.mu.Lock()
	s.pending[seq] = StreamResult{Seq: seq, Frame: frame, Res: res, Err: err, tr: h}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// emit is the stream's delivery goroutine: it waits for the next in-order
// result and forwards it, so a slow consumer blocks only its own stream —
// workers deposit into the pending map and move on. An Abandon unblocks the
// send and turns the remaining deliveries into drops.
func (s *Stream) emit() {
	s.mu.Lock()
	for {
		if r, ok := s.pending[s.nextEmit]; ok {
			delete(s.pending, s.nextEmit)
			s.nextEmit++
			s.mu.Unlock()
			select {
			case s.out <- r:
				// Sent into the delivery buffer. Unless the consumer has
				// already abandoned — in which case the drop-drain will take
				// it and finish the trace as an abandon — that is delivery.
				select {
				case <-s.abandoned:
				default:
					r.tr.Stamp(trace.StageDeliver)
					r.tr.Finish(trace.TerminalDeliver)
				}
			case <-s.abandoned:
				// Consumer is gone; drop this and every later result,
				// recycling their frames through the drop hook.
				s.dropResult(r)
			}
			s.mu.Lock()
			s.inflight--
			s.cond.Broadcast()
			continue
		}
		if s.closed && s.inflight == 0 {
			s.mu.Unlock()
			close(s.out)
			s.forget()
			return
		}
		s.cond.Wait()
	}
}

// forget deregisters the stream from its pipeline once fully drained.
func (s *Stream) forget() {
	s.p.mu.Lock()
	delete(s.p.streams, s)
	s.p.mu.Unlock()
	if s.owner != nil {
		s.owner.streams.Add(-1)
	}
}

// String implements fmt.Stringer for diagnostics.
func (p *Pipeline) String() string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return fmt.Sprintf("pipeline(workers=%d queue=%d/%d streams=%d closed=%v)",
		p.cfg.Workers, len(p.in), cap(p.in), len(p.streams), p.closed)
}
