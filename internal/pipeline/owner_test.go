package pipeline

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"hdc/internal/raster"
	"hdc/internal/recognizer"
)

// owner_test.go covers the reference-counted lifecycle (owner.go): attach/
// detach semantics, the attach-after-last-detach contract, per-owner stats
// attribution and the Close-vs-late-attach races. Run with -race; half the
// value of these tests is the detector's silence.

// TestOwnerLastDetachClosesPool pins the core refcount contract: the pool
// survives any proper subset of owners detaching and drains when the last
// one closes, after which both Attach and direct NewStream fail ErrClosed.
func TestOwnerLastDetachClosesPool(t *testing.T) {
	rec, rend := newRecognizer(t)
	p, err := New(rec, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	frames, _ := renderSigns(t, rend, 4)

	owners := make([]*Owner, 3)
	for i := range owners {
		if owners[i], err = p.Attach(""); err != nil {
			t.Fatal(err)
		}
	}
	if s := p.Stats(); s.Attached != 3 || len(s.Owners) != 3 {
		t.Fatalf("attached=%d owners=%d, want 3/3", s.Attached, len(s.Owners))
	}

	// Work through an owner, then detach all but the last.
	if _, errs, err := owners[0].RecognizeBatch(frames); err != nil {
		t.Fatal(err)
	} else {
		for _, e := range errs {
			if e != nil {
				t.Fatal(e)
			}
		}
	}
	owners[0].Close()
	owners[0].Close() // idempotent
	owners[1].Close()
	if s := p.Stats(); s.Closed || s.Attached != 1 {
		t.Fatalf("pool closed early or miscounted: %+v", s)
	}
	// The surviving owner still streams.
	st, err := owners[2].NewStream()
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	for range st.Results() {
	}

	owners[2].Close()
	if s := p.Stats(); !s.Closed {
		t.Fatal("last detach did not close the pool")
	}
	if _, err := p.Attach("late"); !errors.Is(err, ErrClosed) {
		t.Fatalf("attach after last detach: %v, want ErrClosed", err)
	}
	if _, err := p.NewStream(); !errors.Is(err, ErrClosed) {
		t.Fatalf("stream after last detach: %v, want ErrClosed", err)
	}
}

// TestOwnerStreamAfterDetach pins that a detached owner's handle is dead even
// while other owners keep the pool alive.
func TestOwnerStreamAfterDetach(t *testing.T) {
	rec, _ := newRecognizer(t)
	p, err := New(rec, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	a, err := p.Attach("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Attach("b")
	if err != nil {
		t.Fatal(err)
	}
	a.Close()
	if _, err := a.NewStream(); !errors.Is(err, ErrClosed) {
		t.Fatalf("stream on detached owner: %v, want ErrClosed", err)
	}
	if _, err := a.NewProcStream(func(sc *recognizer.Scratch, seq uint64, f *raster.Gray) (recognizer.Result, error) {
		return recognizer.Result{}, nil
	}); !errors.Is(err, ErrClosed) {
		t.Fatalf("proc stream on detached owner: %v, want ErrClosed", err)
	}
	if _, _, err := a.RecognizeBatch(nil); err != nil {
		// Empty batch never touches the pool; non-empty must fail.
		t.Fatalf("empty batch: %v", err)
	}
	// The pool itself is still healthy for owner b.
	st, err := b.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	for range st.Results() {
	}
}

// TestForceCloseWithOwnersAttached pins that Pipeline.Close (the process
// shutdown path) overrides the reference count: attached owners' streams get
// clean ErrCloseds and their later detaches are harmless no-ops.
func TestForceCloseWithOwnersAttached(t *testing.T) {
	rec, _ := newRecognizer(t)
	p, err := New(rec, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	o, err := p.Attach("drone-0")
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	if _, err := o.NewStream(); !errors.Is(err, ErrClosed) {
		t.Fatalf("stream on force-closed pool: %v, want ErrClosed", err)
	}
	o.Close() // must not panic or double-close the queue
	if _, err := p.Attach("x"); !errors.Is(err, ErrClosed) {
		t.Fatalf("attach on force-closed pool: %v, want ErrClosed", err)
	}
}

// TestOwnerStatsAttribution drives unequal traffic through three owners —
// streams, batches and a shedding Source each — and asserts the per-owner
// counters attribute it correctly and sum to the pool aggregates.
func TestOwnerStatsAttribution(t *testing.T) {
	rec, rend := newRecognizer(t)
	p, err := New(rec, Config{Workers: 2, QueueDepth: 2, StreamWindow: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	frames, _ := renderSigns(t, rend, 6)

	a, err := p.Attach("drone-a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Attach("drone-b")
	if err != nil {
		t.Fatal(err)
	}

	// Owner a: one batch of 6.
	if _, _, err := a.RecognizeBatch(frames); err != nil {
		t.Fatal(err)
	}
	// Owner b: a Source-fed stream offered 6 frames with a consumer, so all
	// survive, then a capacity-1 ring flooded without a consumer to force
	// sheds.
	st, err := b.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan int)
	go func() {
		n := 0
		for range st.Results() {
			n++
		}
		done <- n
	}()
	src, err := NewSource(st, SourceConfig{Capacity: len(frames)})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if err := src.Offer(f); err != nil {
			t.Fatal(err)
		}
	}
	src.Close()
	st.Close()
	if n := <-done; n != len(frames) {
		t.Fatalf("owner b delivered %d frames, want %d", n, len(frames))
	}

	as, bs := a.Stats(), b.Stats()
	if as.Label != "drone-a" || bs.Label != "drone-b" {
		t.Fatalf("labels: %q %q", as.Label, bs.Label)
	}
	if as.Frames != 6 || as.StreamsTotal != 1 || as.Streams != 0 {
		t.Fatalf("owner a stats: %+v", as)
	}
	if as.IngestAccepted != 0 || as.IngestDropped != 0 {
		t.Fatalf("owner a charged for b's ingest: %+v", as)
	}
	if bs.Frames != 6 || bs.IngestAccepted != 6 || bs.IngestDropped != 0 {
		t.Fatalf("owner b stats: %+v", bs)
	}

	ps := p.Stats()
	if got := as.Frames + bs.Frames; got != 12 {
		t.Fatalf("owner frames sum %d, want 12", got)
	}
	if ps.IngestAccepted != as.IngestAccepted+bs.IngestAccepted ||
		ps.IngestDropped != as.IngestDropped+bs.IngestDropped {
		t.Fatalf("pool ingest aggregates drifted from owner sums: %+v vs %+v %+v", ps, as, bs)
	}
	if len(ps.Owners) != 2 || ps.Owners[0].Label != "drone-a" || ps.Owners[1].Label != "drone-b" {
		t.Fatalf("Stats.Owners: %+v", ps.Owners)
	}
}

// TestOwnerShedAttribution wedges one owner's Source (no consumer, tiny ring,
// flood of offers) while another owner works normally, and asserts the sheds
// land on the wedged owner only — the fleet-isolation signal E21 reports.
func TestOwnerShedAttribution(t *testing.T) {
	rec, rend := newRecognizer(t)
	p, err := New(rec, Config{Workers: 1, QueueDepth: 1, StreamWindow: 1})
	if err != nil {
		t.Fatal(err)
	}
	frames, _ := renderSigns(t, rend, 2)

	healthy, err := p.Attach("healthy")
	if err != nil {
		t.Fatal(err)
	}
	wedged, err := p.Attach("wedged")
	if err != nil {
		t.Fatal(err)
	}

	// Wedged: never reads results; its window fills, then its ring sheds.
	wst, err := wedged.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	wsrc, err := NewSource(wst, SourceConfig{Capacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	const offers = 64
	for i := 0; i < offers; i++ {
		if err := wsrc.Offer(frames[i%len(frames)]); err != nil {
			t.Fatal(err)
		}
	}

	// Healthy keeps recognising, one frame at a time, while the wedge stands.
	for i := 0; i < 4; i++ {
		if _, _, err := healthy.RecognizeBatch(frames[:1]); err != nil {
			t.Fatal(err)
		}
	}

	ws, hs := wedged.Stats(), healthy.Stats()
	if ws.IngestDropped == 0 {
		t.Fatalf("wedged owner shed nothing after %d offers into a 1-slot ring: %+v", offers, ws)
	}
	if ws.IngestDropped > ws.IngestAccepted {
		t.Fatalf("dropped %d > accepted %d", ws.IngestDropped, ws.IngestAccepted)
	}
	if hs.IngestDropped != 0 || hs.Frames != 4 {
		t.Fatalf("healthy owner affected by the wedge: %+v", hs)
	}

	// Unwedge and tear down: abandon the ring and the stream, then detach.
	wsrc.Abandon()
	wst.Abandon()
	wedged.Close()
	healthy.Close()
	if s := p.Stats(); !s.Closed {
		t.Fatal("pool still open after both owners detached")
	}
}

// TestOwnerAttachDetachHammer races Attaches, detaches, stream traffic and
// one force-Close across many goroutines: whatever interleaving the
// scheduler picks, every operation must resolve to success or a clean
// ErrClosed, and the pool must end closed with no goroutine stuck.
func TestOwnerAttachDetachHammer(t *testing.T) {
	rec, rend := newRecognizer(t)
	p, err := New(rec, Config{Workers: 2, QueueDepth: 2, StreamWindow: 2})
	if err != nil {
		t.Fatal(err)
	}
	frames, _ := renderSigns(t, rend, 2)

	const workers = 8
	var wg sync.WaitGroup
	errCh := make(chan error, workers*4)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 20; i++ {
				o, err := p.Attach("")
				if err != nil {
					if !errors.Is(err, ErrClosed) {
						errCh <- err
					}
					return
				}
				if rng.Intn(2) == 0 {
					if _, errs, err := o.RecognizeBatch(frames); err != nil {
						if !errors.Is(err, ErrClosed) {
							errCh <- err
						}
					} else {
						for _, e := range errs {
							if e != nil && !errors.Is(e, ErrClosed) {
								errCh <- e
							}
						}
					}
				}
				o.Close()
			}
		}()
	}
	wg.Wait()
	// Drop the hammer mid-life too: by now every goroutine detached, so the
	// pool may already be closed by the last detach; force-close must still
	// be safe.
	p.Close()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if s := p.Stats(); !s.Closed || s.Attached != 0 {
		t.Fatalf("end state: %+v", s)
	}
	if _, err := p.Attach("post"); !errors.Is(err, ErrClosed) {
		t.Fatalf("attach after hammer: %v", err)
	}
}
