package pipeline

import (
	"context"
	"fmt"
	"sync/atomic"

	"hdc/internal/raster"
	"hdc/internal/recognizer"
)

// owner.go makes one Pipeline a shareable, reference-counted resource. A
// fleet of drones (or any set of core.Systems) attaches to a single pool with
// Attach; each attachment is an Owner whose streams and ingest rings are
// accounted separately in Stats, and the pool only shuts down when the last
// attached owner closes. This is what turns recognition capacity from a
// per-drone possession into fleet-level infrastructure: capacity flows to
// whichever owner has frames queued, while per-owner windows and Source rings
// keep one stalled owner from starving the rest.
//
// Lifecycle contract: the first Attach arms the reference count. From then
// on, the pool is collectively owned — when the last owner detaches (Owner.
// Close), the pool drains exactly as Pipeline.Close would, and any later
// Attach fails with ErrClosed. Attach and the last detach are serialised
// under the pipeline mutex, so attach-after-last-detach can never observe a
// half-closed pool: it either wins (pool stays up) or gets ErrClosed.
// Pipeline.Close remains a force-close that overrides the count (the process
// shutdown path); owners detaching afterwards are no-ops.

// Owner is one attached share of a reference-counted Pipeline, created by
// Attach. Streams opened through an Owner are attributed to it in Stats
// (stream, frame and ingest-shed counts), and closing the Owner detaches it —
// draining the pool only if it was the last attachment. All methods are safe
// for concurrent use; Close is idempotent.
type Owner struct {
	p     *Pipeline
	label string
	seq   int // attach order, breaks label ties when sorting Stats.Owners

	detached bool // guarded by p.mu

	streams        atomic.Int64  // registered, not yet fully drained
	streamsTotal   atomic.Uint64 // ever opened
	frames         atomic.Uint64 // results completed (including error results)
	ingestAccepted atomic.Uint64 // Source.Offer accepts on this owner's streams
	ingestDropped  atomic.Uint64 // Source sheds on this owner's streams
}

// Attach adds one owner to the pipeline's reference count and returns its
// handle. The label names the owner in Stats (a drone ID, a server name); an
// empty label is assigned "owner-N". Attach fails with ErrClosed once the
// pipeline is closed — including the instant the last previously-attached
// owner detached, which closes the pool atomically with its detach.
func (p *Pipeline) Attach(label string) (*Owner, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrClosed
	}
	p.ownerSeq++
	if label == "" {
		label = fmt.Sprintf("owner-%d", p.ownerSeq)
	}
	o := &Owner{p: p, label: label, seq: p.ownerSeq}
	p.owners[o] = struct{}{}
	p.everAttached = true
	return o, nil
}

// Label returns the name this owner carries in Stats.
func (o *Owner) Label() string { return o.label }

// Pipeline returns the pool this owner is attached to.
func (o *Owner) Pipeline() *Pipeline { return o.p }

// NewStream opens an ordered recognition stream attributed to this owner; it
// behaves exactly like Pipeline.NewStream otherwise. It fails with ErrClosed
// once the owner has detached or the pipeline has closed.
func (o *Owner) NewStream() (*Stream, error) { return o.p.registerOwned(nil, o) }

// NewProcStream opens an ordered custom-stage stream (see Pipeline.
// NewProcStream) attributed to this owner.
func (o *Owner) NewProcStream(proc Proc) (*Stream, error) {
	if proc == nil {
		return nil, errNilProc
	}
	return o.p.registerOwned(proc, o)
}

// RecognizeBatch is Pipeline.RecognizeBatch on a stream attributed to this
// owner, so batch traffic shows up in the owner's frame counts.
func (o *Owner) RecognizeBatch(frames []*raster.Gray) ([]recognizer.Result, []error, error) {
	return recognizeBatch(o.NewStream, frames)
}

// RecognizeBatchContext is Pipeline.RecognizeBatchContext on a stream
// attributed to this owner; see that method for the deadline and frame
// ownership contract.
func (o *Owner) RecognizeBatchContext(ctx context.Context, frames []*raster.Gray, recycle func(*raster.Gray)) ([]recognizer.Result, []error, error) {
	return recognizeBatchContext(ctx, o.NewStream, frames, recycle)
}

// Close detaches the owner from the pipeline. Streams it opened stay valid —
// they drain on their own schedule — but new streams through this owner fail
// with ErrClosed. If this was the last attached owner, Close drains the pool
// exactly like Pipeline.Close (blocking until the workers exit); otherwise
// the pool keeps serving the remaining owners. Close is idempotent and safe
// to call concurrently with other owners' Closes and Attaches.
func (o *Owner) Close() {
	p := o.p
	p.mu.Lock()
	if o.detached {
		p.mu.Unlock()
		return
	}
	o.detached = true
	delete(p.owners, o)
	var open []*Stream
	if p.everAttached && len(p.owners) == 0 {
		// Last owner out: close the pool under the same critical section, so
		// a racing Attach observes either the owned pool or ErrClosed, never
		// a pool about to vanish underneath it.
		open = p.beginCloseLocked()
	}
	p.mu.Unlock()
	if open == nil {
		return
	}
	for _, st := range open {
		st.Close()
	}
	p.wg.Wait()
}

// Stats snapshots this owner's share of the pool's traffic.
func (o *Owner) Stats() OwnerStats {
	return OwnerStats{
		Label:          o.label,
		Streams:        int(o.streams.Load()),
		StreamsTotal:   o.streamsTotal.Load(),
		Frames:         o.frames.Load(),
		IngestAccepted: o.ingestAccepted.Load(),
		IngestDropped:  o.ingestDropped.Load(),
	}
}

// OwnerStats is one attached owner's slice of the pool accounting: how many
// streams it holds, how much work the pool has completed for it, and how many
// frames its ingest rings shed. The sum of Frames over owners (plus any
// streams opened directly on the Pipeline) equals the pool's completed work;
// sheds are attributed to the owner whose Source evicted them, which is what
// lets a fleet operator see that one wedged drone is shedding at its own ring
// while the others run clean.
type OwnerStats struct {
	Label          string // attachment name passed to Attach
	Streams        int    // live streams (registered, not yet drained)
	StreamsTotal   uint64 // streams ever opened by this owner
	Frames         uint64 // results completed for this owner (errors included)
	IngestAccepted uint64 // frames its Source rings accepted
	IngestDropped  uint64 // frames its Source rings shed
}
