package pipeline

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"hdc/internal/failpoint"
	"hdc/internal/raster"
	"hdc/internal/recognizer"
)

// context_test.go covers the deadline-aware submission paths: SubmitContext
// must bound both the window wait and the queue wait, and
// RecognizeBatchContext must return promptly on an expired deadline while
// recycling every pooled frame exactly once — including the ones a stalled
// worker still holds when the caller gives up.

// countingRecycler tracks recycle calls per frame pointer.
type countingRecycler struct {
	mu    sync.Mutex
	count map[*raster.Gray]int
}

func newCountingRecycler() *countingRecycler {
	return &countingRecycler{count: make(map[*raster.Gray]int)}
}

func (c *countingRecycler) recycle(f *raster.Gray) {
	c.mu.Lock()
	c.count[f]++
	c.mu.Unlock()
}

// total returns (frames recycled once, frames recycled more than once).
func (c *countingRecycler) total() (once, multi int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range c.count {
		if n == 1 {
			once++
		} else {
			multi++
		}
	}
	return
}

// stallProc parks every frame until release is closed.
func stallProc(release <-chan struct{}) Proc {
	return func(_ *recognizer.Scratch, _ uint64, _ *raster.Gray) (recognizer.Result, error) {
		<-release
		return recognizer.Result{}, nil
	}
}

func grayFrames(t *testing.T, n int) []*raster.Gray {
	t.Helper()
	frames := make([]*raster.Gray, n)
	for i := range frames {
		g, err := raster.NewGray(8, 8)
		if err != nil {
			t.Fatal(err)
		}
		frames[i] = g
	}
	return frames
}

func TestSubmitContextBoundsWindowWait(t *testing.T) {
	rec, _ := newRecognizer(t)
	p, err := New(rec, Config{Workers: 1, QueueDepth: 1, StreamWindow: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	release := make(chan struct{})
	st, err := p.NewProcStream(stallProc(release))
	if err != nil {
		t.Fatal(err)
	}

	frames := grayFrames(t, 2)
	if err := st.Submit(frames[0]); err != nil { // fills the window
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	claimed, err := st.SubmitContext(ctx, frames[1])
	if claimed || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("SubmitContext = %v, %v", claimed, err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("window wait not bounded: %v", d)
	}
	close(release)
	st.Abandon()
}

func TestRecognizeBatchContextDeadline(t *testing.T) {
	rec, _ := newRecognizer(t)
	p, err := New(rec, Config{Workers: 1, QueueDepth: 2, StreamWindow: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Stall the single worker via the worker failpoint so queued frames sit.
	if err := failpoint.Enable(failpoint.PipelineWorker, "delay(100ms)"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.DisableAll()

	const n = 8
	frames := grayFrames(t, n)
	rc := newCountingRecycler()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Millisecond)
	defer cancel()
	start := time.Now()
	results, errs, err := p.RecognizeBatchContext(ctx, frames, rc.recycle)
	if err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("batch not bounded by deadline: %v", d)
	}
	if len(results) != n || len(errs) != n {
		t.Fatalf("result shape %d/%d", len(results), len(errs))
	}
	deadline := 0
	for _, e := range errs {
		if errors.Is(e, context.DeadlineExceeded) {
			deadline++
		}
	}
	if deadline == 0 {
		t.Fatalf("no frame marked deadline-exceeded: %v", errs)
	}

	// Every frame must come back through recycle exactly once — delivered,
	// dropped by the abandon, or never submitted — once the stalled workers
	// let go.
	failpoint.DisableAll()
	waitUntil(t, 5*time.Second, func() bool {
		once, multi := rc.total()
		return once == n && multi == 0
	})
	p.Close()
	once, multi := rc.total()
	if once != n || multi != 0 {
		t.Fatalf("recycled once=%d multi=%d, want %d/0", once, multi, n)
	}
}

func TestRecognizeBatchContextNoDeadlineMatchesBatch(t *testing.T) {
	rec, rend := newRecognizer(t)
	p, err := New(rec, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	frames, _ := renderSigns(t, rend, 6)
	// Sequential reference results before the batch consumes the frames.
	want := make([]recognizer.Result, len(frames))
	for i, f := range frames {
		r, err := rec.Recognize(f)
		if err != nil {
			t.Fatalf("sequential frame %d: %v", i, err)
		}
		want[i] = r
	}
	rc := newCountingRecycler()
	results, errs, err := p.RecognizeBatchContext(context.Background(), frames, rc.recycle)
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("frame %d: %v", i, errs[i])
		}
		if results[i].Sign != want[i].Sign || results[i].Label != want[i].Label {
			t.Fatalf("frame %d: got %v want %v", i, results[i].Sign, want[i].Sign)
		}
	}
	once, multi := rc.total()
	if once != len(frames) || multi != 0 {
		t.Fatalf("recycled once=%d multi=%d", once, multi)
	}
}

func waitUntil(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !cond() {
		t.Fatal("condition not reached before timeout")
	}
}
