package pipeline

import (
	"errors"
	"sync"
	"sync/atomic"

	"hdc/internal/failpoint"
	"hdc/internal/raster"
	"hdc/internal/trace"
)

// source.go is the live-feed ingest layer: a bounded ring buffer with a
// drop-oldest policy sitting between a frame producer (a camera ISR, an HTTP
// ingest handler — anything that must never stall) and a Stream's blocking
// Submit. Submit applies back-pressure by design; a capture device cannot
// absorb back-pressure, it can only drop frames. The Source converts the one
// into the other: Offer never blocks, a saturated pool shows up as evicted
// frames (oldest first, so the retained window stays the freshest), and the
// eviction totals surface through Source.Stats, the pipeline-wide
// Stats.IngestAccepted/IngestDropped aggregates and the service's /statsz.

// ErrSourceClosed is returned by Offer once the source is closed — or once
// its stream went away underneath it (pipeline shutdown).
var ErrSourceClosed = errors.New("pipeline: source closed")

// SourceConfig tunes one ingest ring.
type SourceConfig struct {
	// Capacity is the ring's slot count (default: the pipeline's
	// StreamWindow). Sizing it near the stream window keeps at most one
	// window of stale frames queued ahead of fresh ones.
	Capacity int
	// OnDrop receives every frame the source gives up on: evicted by a
	// newer frame, discarded by Abandon, or failed to submit because the
	// pipeline closed. Producers drawing frames from a raster.Pool recycle
	// them here. May be nil; called from Offer and the forwarder goroutine.
	OnDrop func(*raster.Gray)
}

// Source is the bounded drop-oldest ring in front of a Stream. Offer is safe
// for concurrent use; Close/Abandon may be called once each, from anywhere.
type Source struct {
	st  *Stream
	cfg SourceConfig

	mu      sync.Mutex
	cond    *sync.Cond
	ring    []*raster.Gray
	traces  []trace.Handle // parallel to ring: each queued frame's trace
	head    int            // index of the oldest queued frame
	count   int            // queued frames
	closed  bool
	discard bool // drop queued frames instead of submitting them

	accepted atomic.Uint64
	dropped  atomic.Uint64

	done chan struct{} // closed when the forwarder exits
}

// NewSource builds an ingest ring feeding st and starts its forwarder. The
// caller keeps ownership of st: closing the source never closes the stream
// (a stream can outlive a camera feed and vice versa).
func NewSource(st *Stream, cfg SourceConfig) (*Source, error) {
	if st == nil {
		return nil, errors.New("pipeline: nil stream")
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = st.p.cfg.StreamWindow
	}
	s := &Source{
		st:     st,
		cfg:    cfg,
		ring:   make([]*raster.Gray, cfg.Capacity),
		traces: make([]trace.Handle, cfg.Capacity),
		done:   make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	go s.forward()
	return s, nil
}

// Offer hands one frame to the ring and returns immediately. A full ring
// evicts its oldest frame (through OnDrop) to make room, so the producer
// holds its capture cadence no matter how far behind the pool is. The frame
// must not be mutated after Offer accepts it.
func (s *Source) Offer(f *raster.Gray) error {
	if f == nil {
		return ErrNilFrame
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrSourceClosed
	}
	var evicted *raster.Gray
	var evictedTr trace.Handle
	if s.count == len(s.ring) {
		evicted = s.ring[s.head]
		evictedTr = s.traces[s.head]
		s.ring[s.head] = nil
		s.traces[s.head] = trace.Handle{}
		s.head = (s.head + 1) % len(s.ring)
		s.count--
	}
	h := s.st.p.tracer.Begin(s.st.traceOwner)
	h.Stamp(trace.StageOffer)
	tail := (s.head + s.count) % len(s.ring)
	s.ring[tail] = f
	s.traces[tail] = h
	s.count++
	// Count the accept before releasing the lock: a concurrent Offer may
	// evict this frame (and count the drop) the moment we unlock, and the
	// dropped ≤ accepted invariant must hold at every observable instant.
	s.accepted.Add(1)
	s.st.p.ingestAccepted.Add(1)
	if o := s.st.owner; o != nil {
		o.ingestAccepted.Add(1)
	}
	s.cond.Broadcast()
	s.mu.Unlock()

	if evicted != nil {
		s.drop(evicted, evictedTr)
	}
	return nil
}

// drop counts one dropped frame — against the source, the pipeline and the
// stream's owner, so a fleet's sheds are attributed to the drone that shed
// them — recycles it, and ends its trace with the shed terminal.
func (s *Source) drop(f *raster.Gray, h trace.Handle) {
	h.Finish(trace.TerminalShed)
	s.dropped.Add(1)
	s.st.p.ingestDropped.Add(1)
	if o := s.st.owner; o != nil {
		o.ingestDropped.Add(1)
	}
	if s.cfg.OnDrop != nil {
		s.cfg.OnDrop(f)
	}
}

// forward is the ring's single consumer: it pops the oldest frame and blocks
// in Stream.Submit — absorbing the pool's back-pressure — while Offer keeps
// the ring fresh by evicting around it.
func (s *Source) forward() {
	defer close(s.done)
	for {
		s.mu.Lock()
		for s.count == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.count == 0 {
			s.mu.Unlock()
			return
		}
		f := s.ring[s.head]
		h := s.traces[s.head]
		s.ring[s.head] = nil
		s.traces[s.head] = trace.Handle{}
		s.head = (s.head + 1) % len(s.ring)
		s.count--
		discard := s.discard
		s.mu.Unlock()

		if discard {
			s.drop(f, h)
			continue
		}
		// Ring-forward failpoint: a delay stalls the forwarder so the ring
		// backs up and evicts (shedding under a wedged consumer); an error
		// sheds this frame like any other drop.
		if err := failpoint.Inject(failpoint.PipelineRingForward); err != nil {
			s.drop(f, h)
			continue
		}
		if err := s.st.submit(f, h); err != nil {
			// The stream or pipeline closed underneath us: everything still
			// queued can only be dropped, and future Offers should fail
			// fast.
			s.mu.Lock()
			s.closed = true
			s.discard = true
			s.mu.Unlock()
			if errors.Is(err, ErrClosed) {
				// Submit claimed a sequence number before the pool refused
				// the frame, so it comes back as an error result and is
				// recycled on the delivery (or drop-hook) path — dropping
				// it here too would recycle one buffer twice. Its trace
				// travels with the error result and finishes there.
				continue
			}
			s.drop(f, h)
		}
	}
}

// Close stops intake and flushes the frames still queued into the stream,
// blocking until the ring drains and the forwarder exits. The underlying
// stream stays open. If the forwarder is parked in Submit, Close waits for
// that back-pressure to release — use Abandon to walk away instead.
func (s *Source) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	<-s.done
}

// Abandon stops intake and discards the queued frames through OnDrop
// instead of submitting them. Unlike Close it does not wait for the
// forwarder: a forwarder wedged against a stalled pool (blocked in Submit)
// finishes its discard asynchronously once the pool lets go, so an idle
// reaper calling Abandon can never be held hostage by pool back-pressure.
// Close or Abandon the underlying stream first to release a blocked Submit
// promptly.
func (s *Source) Abandon() {
	s.mu.Lock()
	s.closed = true
	s.discard = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// SourceStats is a point-in-time ingest snapshot.
type SourceStats struct {
	Accepted uint64 // frames Offer took in
	Dropped  uint64 // frames evicted, discarded or failed to submit
	Depth    int    // frames queued right now
}

// Stats reports the source's counters. Safe for concurrent use.
func (s *Source) Stats() SourceStats {
	s.mu.Lock()
	depth := s.count
	s.mu.Unlock()
	return SourceStats{
		Accepted: s.accepted.Load(),
		Dropped:  s.dropped.Load(),
		Depth:    depth,
	}
}
