package pipeline

import (
	"testing"
	"time"

	"hdc/internal/raster"
	"hdc/internal/recognizer"
	"hdc/internal/trace"
)

// trace_integration_test.go pins the tracing wiring end to end: frames
// travelling the real pipeline (submit, ingest ring, worker, emit, abandon)
// must come out the other side as complete trace records with the right
// terminal — exactly one of deliver/shed/abandon per frame.

// grayFrame builds a small blank frame for proc-stream tests.
func grayFrame(t *testing.T) *raster.Gray {
	t.Helper()
	f, err := raster.NewGray(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// drainTraces waits until the tracer's finished totals account for every
// begun frame (in-flight work racing the snapshot otherwise makes the
// assertions flaky).
func drainTraces(t *testing.T, tr *trace.Tracer) trace.Snapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap := tr.Snapshot(0)
		finished := snap.Totals.Delivered + snap.Totals.Shed + snap.Totals.Abandoned
		if finished == snap.Totals.Begun {
			return snap
		}
		if time.Now().After(deadline) {
			t.Fatalf("traces never drained: %+v", snap.Totals)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTraceDeliveredFrames drives an owner-attributed stream through the
// pool and checks every frame's trace: deliver terminal, owner label, and
// the full enqueue→deliver stage ladder with monotone offsets.
func TestTraceDeliveredFrames(t *testing.T) {
	rec, rend := newRecognizer(t)
	frames, _ := renderSigns(t, rend, 6)

	p, err := New(rec, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	o, err := p.Attach("drone-42")
	if err != nil {
		t.Fatal(err)
	}
	st, err := o.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		defer st.Close()
		for _, f := range frames {
			if err := st.Submit(f); err != nil {
				return
			}
		}
	}()
	for range st.Results() {
	}

	snap := drainTraces(t, p.Tracer())
	if snap.Totals.Begun != uint64(len(frames)) || snap.Totals.Delivered != uint64(len(frames)) {
		t.Fatalf("totals = %+v, want %d delivered", snap.Totals, len(frames))
	}
	if len(snap.Frames) != len(frames) {
		t.Fatalf("snapshot holds %d frames, want %d", len(snap.Frames), len(frames))
	}
	for _, f := range snap.Frames {
		if f.Terminal != "deliver" {
			t.Fatalf("frame %d terminal = %q, want deliver", f.ID, f.Terminal)
		}
		if f.Owner != "drone-42" {
			t.Fatalf("frame %d owner = %q, want drone-42", f.ID, f.Owner)
		}
		// Direct Submit: no offer stamp, then the full ladder.
		want := []string{"enqueue", "dequeue", "binarize", "features", "classify", "deliver"}
		if len(f.Stages) != len(want) {
			t.Fatalf("frame %d has %d stages: %+v", f.ID, len(f.Stages), f.Stages)
		}
		for i, sp := range f.Stages {
			if sp.Stage != want[i] {
				t.Fatalf("frame %d stage[%d] = %q, want %q", f.ID, i, sp.Stage, want[i])
			}
			if sp.SinceNs < 0 {
				t.Fatalf("frame %d stage %q went backwards: %d", f.ID, sp.Stage, sp.SinceNs)
			}
		}
		if f.TotalNs <= 0 {
			t.Fatalf("frame %d total = %d", f.ID, f.TotalNs)
		}
	}
	// The aggregate breakdown saw every delivered frame.
	for _, st := range snap.Stages {
		if st.Stage == "ingest" {
			continue // no ingest ring in this test
		}
		if st.Count != uint64(len(frames)) {
			t.Fatalf("span %q count = %d, want %d", st.Stage, st.Count, len(frames))
		}
	}
}

// TestTraceShedAtIngestRing wedges a proc stream behind a gate so a small
// ingest ring evicts, and checks evicted frames end as shed (with the offer
// stamp) while the survivors deliver — and that the trace totals mirror the
// ring's dropped ≤ accepted invariant.
func TestTraceShedAtIngestRing(t *testing.T) {
	rec, _ := newRecognizer(t)
	p, err := New(rec, Config{Workers: 1, QueueDepth: 1, StreamWindow: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	gate := make(chan struct{})
	st, err := p.NewProcStream(func(sc *recognizer.Scratch, seq uint64, frame *raster.Gray) (recognizer.Result, error) {
		<-gate
		return recognizer.Result{OK: true}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewSource(st, SourceConfig{Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	const offered = 16
	for i := 0; i < offered; i++ {
		if err := src.Offer(grayFrame(t)); err != nil {
			t.Fatal(err)
		}
	}
	close(gate)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range st.Results() {
		}
	}()
	src.Close() // flush the ring's survivors into the stream
	st.Close()
	<-drained

	snap := drainTraces(t, p.Tracer())
	if snap.Totals.Begun != offered {
		t.Fatalf("begun = %d, want %d (every Offer begins a trace)", snap.Totals.Begun, offered)
	}
	if snap.Totals.Shed == 0 || snap.Totals.Delivered == 0 {
		t.Fatalf("expected both sheds and deliveries: %+v", snap.Totals)
	}
	if snap.Totals.Shed > snap.Totals.Begun {
		t.Fatalf("shed %d > begun %d", snap.Totals.Shed, snap.Totals.Begun)
	}
	stats := src.Stats()
	if snap.Totals.Shed != stats.Dropped || stats.Dropped > stats.Accepted {
		t.Fatalf("trace sheds %d vs ring dropped %d / accepted %d", snap.Totals.Shed, stats.Dropped, stats.Accepted)
	}
	for _, f := range snap.Frames {
		if f.Terminal != "shed" {
			continue
		}
		if len(f.Stages) == 0 || f.Stages[0].Stage != "offer" {
			t.Fatalf("shed frame %d missing its offer stamp: %+v", f.ID, f.Stages)
		}
	}
}

// TestTraceAbandonTerminalExactlyOnce is the regression test for the
// deadline path: a frame dropped by an abandoned stream must end in the
// abandon terminal exactly once — never double-finished by the racing
// deliver path, never left in flight.
func TestTraceAbandonTerminalExactlyOnce(t *testing.T) {
	rec, _ := newRecognizer(t)
	p, err := New(rec, Config{Workers: 1, QueueDepth: 8, StreamWindow: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	gate := make(chan struct{})
	st, err := p.NewProcStream(func(sc *recognizer.Scratch, seq uint64, frame *raster.Gray) (recognizer.Result, error) {
		<-gate
		return recognizer.Result{OK: true}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	const submitted = 4
	for i := 0; i < submitted; i++ {
		if err := st.Submit(grayFrame(t)); err != nil {
			t.Fatal(err)
		}
	}
	// The consumer walks away while every frame is still in flight, then the
	// workers finish into the abandoned stream.
	st.Abandon()
	close(gate)

	snap := drainTraces(t, p.Tracer())
	if snap.Totals.Begun != submitted {
		t.Fatalf("begun = %d, want %d", snap.Totals.Begun, submitted)
	}
	if snap.Totals.Abandoned != submitted || snap.Totals.Delivered != 0 || snap.Totals.Shed != 0 {
		t.Fatalf("abandoned frames double- or mis-terminated: %+v", snap.Totals)
	}
	seen := map[uint64]bool{}
	for _, f := range snap.Frames {
		if f.Terminal != "abandon" {
			t.Fatalf("frame %d terminal = %q, want abandon", f.ID, f.Terminal)
		}
		if seen[f.ID] {
			t.Fatalf("frame %d appears twice in the snapshot", f.ID)
		}
		seen[f.ID] = true
	}
	if len(seen) != submitted {
		t.Fatalf("snapshot shows %d abandoned frames, want %d", len(seen), submitted)
	}
}

// TestTraceDisarmedPipeline checks a disarmed tracer records nothing while
// the pipeline still works — the production default is armed, but the
// disarmed path must stay correct for overhead-sensitive deployments.
func TestTraceDisarmedPipeline(t *testing.T) {
	rec, rend := newRecognizer(t)
	frames, _ := renderSigns(t, rend, 4)
	p, err := New(rec, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.Tracer().Disarm()

	results, errs, err := p.RecognizeBatch(frames)
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("frame %d: %v", i, errs[i])
		}
	}
	snap := p.Tracer().Snapshot(0)
	if snap.Armed || snap.Totals.Begun != 0 || len(snap.Frames) != 0 {
		t.Fatalf("disarmed tracer recorded traffic: %+v", snap.Totals)
	}
}
