package pipeline

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"hdc/internal/raster"
	"hdc/internal/recognizer"
)

// newFrames returns n distinct small frames.
func newFrames(t testing.TB, n int) []*raster.Gray {
	t.Helper()
	frames := make([]*raster.Gray, n)
	for i := range frames {
		g, err := raster.NewGray(8, 8)
		if err != nil {
			t.Fatal(err)
		}
		g.Pix[0] = uint8(i)
		frames[i] = g
	}
	return frames
}

// slowProc returns a Proc that takes d per frame — a stand-in for a pool
// slower than the offered frame rate.
func slowProc(d time.Duration, processed *atomic.Uint64) Proc {
	return func(sc *recognizer.Scratch, seq uint64, frame *raster.Gray) (recognizer.Result, error) {
		if d > 0 {
			time.Sleep(d)
		}
		if processed != nil {
			processed.Add(1)
		}
		return recognizer.Result{}, nil
	}
}

// TestSourceDropsOldestUnderOverload offers frames far faster than a
// one-worker pool can recognise them and asserts the live-feed contract:
// Offer never fails or blocks meaningfully, the overflow is dropped oldest
// first, and every offered frame is accounted for exactly once as either a
// delivered result or a drop.
func TestSourceDropsOldestUnderOverload(t *testing.T) {
	rec, _ := newRecognizer(t)
	p, err := New(rec, Config{Workers: 1, QueueDepth: 1, StreamWindow: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	st, err := p.NewProcStream(slowProc(3*time.Millisecond, nil))
	if err != nil {
		t.Fatal(err)
	}

	var hookDrops atomic.Uint64
	src, err := NewSource(st, SourceConfig{
		Capacity: 4,
		OnDrop:   func(*raster.Gray) { hookDrops.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}

	delivered := make(chan int)
	go func() {
		n := 0
		for range st.Results() {
			n++
		}
		delivered <- n
	}()

	const offered = 200
	frames := newFrames(t, offered)
	for _, f := range frames {
		if err := src.Offer(f); err != nil {
			t.Fatalf("Offer: %v", err)
		}
	}
	src.Close() // flush the ring
	st.Close()
	got := <-delivered

	stats := src.Stats()
	if stats.Accepted != offered {
		t.Fatalf("accepted %d, want %d", stats.Accepted, offered)
	}
	if stats.Dropped == 0 {
		t.Fatal("expected drops under a saturated one-worker pool")
	}
	if uint64(got)+stats.Dropped != offered {
		t.Fatalf("delivered %d + dropped %d != offered %d", got, stats.Dropped, offered)
	}
	if hookDrops.Load() != stats.Dropped {
		t.Fatalf("OnDrop ran %d times for %d drops", hookDrops.Load(), stats.Dropped)
	}
	ps := p.Stats()
	if ps.IngestAccepted != offered || ps.IngestDropped != stats.Dropped {
		t.Fatalf("pipeline ingest totals %d/%d, want %d/%d",
			ps.IngestAccepted, ps.IngestDropped, offered, stats.Dropped)
	}
	if stats.Depth != 0 {
		t.Fatalf("ring depth %d after Close", stats.Depth)
	}
}

// TestSourceKeepsFreshestFrames pins the drop-oldest policy: with the pool
// wedged, a ring of capacity C retains exactly the last C offered frames in
// order.
func TestSourceKeepsFreshestFrames(t *testing.T) {
	rec, _ := newRecognizer(t)
	p, err := New(rec, Config{Workers: 1, QueueDepth: 1, StreamWindow: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Wedge the single worker until released.
	release := make(chan struct{})
	var order []uint8
	st, err := p.NewProcStream(func(sc *recognizer.Scratch, seq uint64, frame *raster.Gray) (recognizer.Result, error) {
		<-release
		return recognizer.Result{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	src, err := NewSource(st, SourceConfig{Capacity: 3})
	if err != nil {
		t.Fatal(err)
	}
	frames := newFrames(t, 10)
	for _, f := range frames {
		if err := src.Offer(f); err != nil {
			t.Fatal(err)
		}
	}
	// The forwarder pops at most two frames before wedging (one in the
	// worker, one parked in Submit against the window of 1), and those pops
	// can land before or after the offer loop's last eviction — so the ring
	// holds either its full capacity or one less.
	if d := src.Stats().Depth; d < 2 || d > 3 {
		t.Fatalf("ring depth %d after overload, want 2 or 3", d)
	}
	close(release)

	done := make(chan struct{})
	go func() {
		for r := range st.Results() {
			order = append(order, r.Frame.Pix[0])
		}
		close(done)
	}()
	src.Close()
	st.Close()
	<-done

	// The delivered tail must be the freshest frames, in offer order.
	if len(order) < 3 {
		t.Fatalf("delivered %d frames, want at least the ring capacity", len(order))
	}
	tail := order[len(order)-3:]
	for i, v := range tail {
		if want := uint8(10 - 3 + i); v != want {
			t.Fatalf("tail[%d] = frame %d, want %d (full tail %v)", i, v, want, order)
		}
	}
}

// TestSourceAbandonDiscards covers the walk-away path: queued frames are
// recycled through OnDrop, not submitted, and later Offers fail.
func TestSourceAbandonDiscards(t *testing.T) {
	rec, _ := newRecognizer(t)
	p, err := New(rec, Config{Workers: 1, QueueDepth: 1, StreamWindow: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	release := make(chan struct{})
	st, err := p.NewProcStream(func(sc *recognizer.Scratch, seq uint64, frame *raster.Gray) (recognizer.Result, error) {
		<-release
		return recognizer.Result{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var recycled atomic.Uint64
	st.SetDropHook(func(*raster.Gray) { recycled.Add(1) })
	src, err := NewSource(st, SourceConfig{
		Capacity: 8,
		OnDrop:   func(*raster.Gray) { recycled.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	frames := newFrames(t, 6)
	for _, f := range frames {
		if err := src.Offer(f); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	st.Abandon()
	src.Abandon()
	if err := src.Offer(frames[0]); !errors.Is(err, ErrSourceClosed) {
		t.Fatalf("Offer after Abandon: %v", err)
	}
	// Every frame ends up recycled exactly once: via the source's OnDrop
	// (never submitted) or the stream's drop hook (submitted, result dropped).
	deadline := time.Now().Add(5 * time.Second)
	for recycled.Load() != 6 {
		if time.Now().After(deadline) {
			t.Fatalf("recycled %d of 6 frames", recycled.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSourceCloseRaceRecyclesOnce is the double-recycle regression: a
// Submit that fails with ErrClosed has already claimed a sequence number,
// so its frame comes back as an error result — the source must NOT also
// route it through OnDrop, or one pooled buffer is recycled twice. Race
// Pipeline.Close against a live feed repeatedly and demand every offered
// frame is accounted for exactly once across the delivery and drop paths.
func TestSourceCloseRaceRecyclesOnce(t *testing.T) {
	rec, _ := newRecognizer(t)
	for iter := 0; iter < 20; iter++ {
		p, err := New(rec, Config{Workers: 1, QueueDepth: 1, StreamWindow: 1})
		if err != nil {
			t.Fatal(err)
		}
		st, err := p.NewProcStream(slowProc(50*time.Microsecond, nil))
		if err != nil {
			t.Fatal(err)
		}
		var recycled atomic.Uint64 // drop-path recycles (hook + OnDrop)
		st.SetDropHook(func(*raster.Gray) { recycled.Add(1) })
		delivered := make(chan uint64)
		go func() {
			var n uint64
			for range st.Results() {
				n++ // delivery-path recycle (consumer owns the frame)
			}
			delivered <- n
		}()
		src, err := NewSource(st, SourceConfig{
			Capacity: 4,
			OnDrop:   func(*raster.Gray) { recycled.Add(1) },
		})
		if err != nil {
			t.Fatal(err)
		}

		frames := newFrames(t, 8)
		closed := make(chan struct{})
		go func() {
			p.Close() // races the offers below
			close(closed)
		}()
		var offered uint64
		for _, f := range frames {
			if err := src.Offer(f); err != nil {
				break
			}
			offered++
		}
		<-closed
		src.Close()
		got := <-delivered
		deadline := time.Now().Add(5 * time.Second)
		for got+recycled.Load() != offered {
			if time.Now().After(deadline) {
				t.Fatalf("iter %d: %d delivered + %d recycled != %d offered (double or lost recycle)",
					iter, got, recycled.Load(), offered)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// TestSourceSurvivesPipelineClose closes the pipeline under a live source
// and asserts the source fails fast afterwards with every frame accounted.
func TestSourceSurvivesPipelineClose(t *testing.T) {
	rec, _ := newRecognizer(t)
	p, err := New(rec, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var processed atomic.Uint64
	st, err := p.NewProcStream(slowProc(0, &processed))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for range st.Results() {
		}
	}()
	var dropped atomic.Uint64
	src, err := NewSource(st, SourceConfig{OnDrop: func(*raster.Gray) { dropped.Add(1) }})
	if err != nil {
		t.Fatal(err)
	}
	frames := newFrames(t, 4)
	for _, f := range frames {
		if err := src.Offer(f); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	// Offers eventually fail once the forwarder notices the closed pool.
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := src.Offer(frames[0])
		if errors.Is(err, ErrSourceClosed) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Offer kept succeeding after pipeline close")
		}
		time.Sleep(time.Millisecond)
	}
	src.Close()
}
