// Package scene renders the synthetic drone-camera frames that substitute
// for the paper's real footage (§IV, Fig 4): a posed signaller viewed from a
// drone at a given altitude, stand-off distance and relative azimuth, as a
// grayscale frame with optional blur, sensor noise and background clutter.
//
// The geometry matches the paper's experiment: the reference capture is the
// signaller full-on (azimuth 0°) at 5 m altitude and 3 m horizontal
// distance; sweeps vary altitude (2–5 m) and relative azimuth (0–65° and
// beyond, into the dead angle).
package scene

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"hdc/internal/body"
	"hdc/internal/geom"
	"hdc/internal/raster"
)

// View describes the drone's viewpoint relative to the signaller, who
// stands at the world origin facing the drone's azimuth-0 position.
type View struct {
	AltitudeM  float64 // drone altitude above ground (meters)
	DistanceM  float64 // horizontal stand-off distance (meters)
	AzimuthDeg float64 // relative azimuth: 0 = full-on, 90 = side view
}

// Validate checks physical plausibility.
func (v View) Validate() error {
	if v.AltitudeM < 0.2 || v.AltitudeM > 120 {
		return fmt.Errorf("scene: altitude %.2f m out of range", v.AltitudeM)
	}
	if v.DistanceM < 0.5 || v.DistanceM > 500 {
		return fmt.Errorf("scene: distance %.2f m out of range", v.DistanceM)
	}
	return nil
}

// String implements fmt.Stringer.
func (v View) String() string {
	return fmt.Sprintf("alt=%.1fm dist=%.1fm az=%.0f°", v.AltitudeM, v.DistanceM, v.AzimuthDeg)
}

// Config controls the virtual camera and degradation model.
type Config struct {
	Width      int     // frame width (default 256)
	Height     int     // frame height (default 256)
	VFovDeg    float64 // vertical field of view (default 50°)
	Background uint8   // background intensity (default 210)
	Foreground uint8   // signaller intensity (default 30)
	BlurRadius int     // box-blur radius applied after drawing (default 1)
	NoiseSigma float64 // Gaussian sensor noise σ (default 4)
	SaltPepper float64 // fraction of impulsive noise pixels (default 0)
	Clutter    int     // number of random background clutter blobs (default 0)
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Width == 0 {
		c.Width = 256
	}
	if c.Height == 0 {
		c.Height = 256
	}
	if c.VFovDeg == 0 {
		c.VFovDeg = 50
	}
	if c.Background == 0 {
		c.Background = 210
	}
	if c.Foreground == 0 {
		c.Foreground = 30
	}
	if c.BlurRadius == 0 {
		c.BlurRadius = 1
	}
	if c.NoiseSigma == 0 {
		c.NoiseSigma = 4
	}
	return c
}

// Renderer draws signaller frames. The renderer itself is stateless beyond
// its immutable configuration, so one Renderer may serve any number of
// goroutines concurrently — each call draws into its own frame (or the
// caller-provided one for the Into variants) and randomness flows only
// through the rng argument, which must not be shared between goroutines.
type Renderer struct {
	cfg Config
}

// NewRenderer builds a renderer with the given configuration (zero fields
// take defaults).
func NewRenderer(cfg Config) *Renderer {
	return &Renderer{cfg: cfg.withDefaults()}
}

// Config returns the effective configuration.
func (r *Renderer) Config() Config { return r.cfg }

// ErrNotVisible is returned when the signaller projects entirely outside
// the frame.
var ErrNotVisible = errors.New("scene: signaller outside the frame")

// Render draws the posed signaller from the given view. rng may be nil for a
// clean (noise-free, clutter-free) frame.
func (r *Renderer) Render(sign body.Sign, v View, opts body.Options, rng *rand.Rand) (*raster.Gray, error) {
	return r.RenderInto(nil, sign, v, opts, rng)
}

// RenderInto is Render drawing into dst (resized as needed), the
// reusable-buffer path of the streaming pipeline: producers pull frames from
// a raster.Pool, render into them and submit them downstream. A nil dst
// allocates, making RenderInto(nil, ...) equivalent to Render.
func (r *Renderer) RenderInto(dst *raster.Gray, sign body.Sign, v View, opts body.Options, rng *rand.Rand) (*raster.Gray, error) {
	if err := v.Validate(); err != nil {
		return nil, err
	}
	fig, err := body.NewFigure(sign, opts)
	if err != nil {
		return nil, err
	}
	return r.RenderFiguresInto(dst, []body.Figure{fig}, v, rng)
}

// RenderFigure draws an explicit figure (already posed/jittered) from the
// view.
func (r *Renderer) RenderFigure(fig body.Figure, v View, rng *rand.Rand) (*raster.Gray, error) {
	return r.RenderFigures([]body.Figure{fig}, v, rng)
}

// RenderFigures draws several world-placed figures from the view (the first
// is the primary signaller at the origin the camera aims at; the rest are
// bystanders translated elsewhere — see body.Figure.Translate). At least
// one figure must be visible.
func (r *Renderer) RenderFigures(figs []body.Figure, v View, rng *rand.Rand) (*raster.Gray, error) {
	return r.RenderFiguresInto(nil, figs, v, rng)
}

// RenderFiguresInto is RenderFigures drawing into dst (resized as needed); a
// nil dst allocates.
func (r *Renderer) RenderFiguresInto(dst *raster.Gray, figs []body.Figure, v View, rng *rand.Rand) (*raster.Gray, error) {
	if err := v.Validate(); err != nil {
		return nil, err
	}
	if len(figs) == 0 {
		return nil, errors.New("scene: no figures")
	}
	cfg := r.cfg
	img := dst
	if img == nil {
		var err error
		img, err = raster.NewGray(cfg.Width, cfg.Height)
		if err != nil {
			return nil, err
		}
	} else if err := img.Resize(cfg.Width, cfg.Height); err != nil {
		// Resize (not Reset): the Fill below overwrites every pixel, so
		// clearing first would be a wasted full-frame pass.
		return nil, err
	}
	img.Fill(cfg.Background)

	// Drone position: azimuth 0 puts the drone on the +Y axis (which the
	// signaller faces), positive azimuth walks it clockwise around the
	// signaller.
	az := geom.Deg2Rad(v.AzimuthDeg)
	eye := geom.V3(v.DistanceM*math.Sin(az), v.DistanceM*math.Cos(az), v.AltitudeM)
	target := geom.V3(0, 0, figs[0].Height*0.5)
	cam := geom.NewCamera(eye, target, geom.Deg2Rad(cfg.VFovDeg), cfg.Width, cfg.Height)

	// Optional clutter: dark blobs scattered on the ground plane, drawn
	// before the signaller so they never occlude it.
	if rng != nil && cfg.Clutter > 0 {
		r.drawClutter(img, cam, rng)
	}

	drawn := 0
	for _, fig := range figs {
		drawn += r.drawFigure(img, cam, fig)
	}
	if drawn == 0 {
		return nil, ErrNotVisible
	}

	if cfg.BlurRadius > 0 {
		img.BoxBlur(cfg.BlurRadius, 2)
	}
	if rng != nil {
		img.AddGaussianNoise(rng, cfg.NoiseSigma)
		img.AddSaltPepper(rng, cfg.SaltPepper)
	}
	return img, nil
}

// drawFigure rasterises one figure, returning how many of its parts landed
// inside the frame.
func (r *Renderer) drawFigure(img *raster.Gray, cam *geom.Camera, fig body.Figure) int {
	cfg := r.cfg
	drawn := 0
	for _, c := range fig.Capsules {
		pa, errA := cam.Project(c.A)
		pb, errB := cam.Project(c.B)
		if errA != nil || errB != nil {
			continue
		}
		depth := cam.Depth(c.A.Add(c.B).Scale(0.5))
		pxr := cam.PixelsPerMeterAt(depth) * c.Radius
		if pxr < 0.5 {
			pxr = 0.5
		}
		img.StrokeLine(pa.X, pa.Y, pb.X, pb.Y, pxr, cfg.Foreground)
		if inFrame(pa, cfg) || inFrame(pb, cfg) {
			drawn++
		}
	}
	if ph, err := cam.Project(fig.HeadCenter); err == nil {
		pxr := cam.PixelsPerMeterAt(cam.Depth(fig.HeadCenter)) * fig.HeadRadius
		img.FillDisc(ph.X, ph.Y, pxr, cfg.Foreground)
		if inFrame(ph, cfg) {
			drawn++
		}
	}
	return drawn
}

func inFrame(p geom.Vec2, cfg Config) bool {
	return p.X >= 0 && p.X < float64(cfg.Width) && p.Y >= 0 && p.Y < float64(cfg.Height)
}

// drawClutter scatters small dark ground blobs (stones, shadows, crates)
// around the signaller. Blob sizes stay well below the signaller's
// silhouette so largest-component selection rejects them — unless the test
// deliberately cranks Clutter up.
func (r *Renderer) drawClutter(img *raster.Gray, cam *geom.Camera, rng *rand.Rand) {
	for i := 0; i < r.cfg.Clutter; i++ {
		// Random ground position 1.5–6 m away from the signaller.
		ang := rng.Float64() * 2 * math.Pi
		rad := 1.5 + rng.Float64()*4.5
		p := geom.V3(rad*math.Cos(ang), rad*math.Sin(ang), 0.05)
		px, err := cam.Project(p)
		if err != nil {
			continue
		}
		size := cam.PixelsPerMeterAt(cam.Depth(p)) * (0.05 + rng.Float64()*0.12)
		shade := uint8(40 + rng.Intn(60))
		img.FillDisc(px.X, px.Y, size, shade)
	}
}

// ReferenceView is the paper's canonical capture geometry: 5 m altitude,
// 3 m horizontal distance, full-on (0° azimuth).
func ReferenceView() View {
	return View{AltitudeM: 5, DistanceM: 3, AzimuthDeg: 0}
}
