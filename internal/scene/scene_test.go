package scene

import (
	"math"
	"math/rand"
	"testing"

	"hdc/internal/body"
	"hdc/internal/geom"
	"hdc/internal/vision"
)

// geomV3 is a local alias to keep the bystander test terse.
func geomV3(x, y, z float64) geom.Vec3 { return geom.V3(x, y, z) }

func TestViewValidate(t *testing.T) {
	tests := []struct {
		name string
		v    View
		ok   bool
	}{
		{"reference", ReferenceView(), true},
		{"low alt", View{AltitudeM: 0.05, DistanceM: 3}, false},
		{"absurd alt", View{AltitudeM: 500, DistanceM: 3}, false},
		{"too close", View{AltitudeM: 5, DistanceM: 0.1}, false},
		{"far", View{AltitudeM: 5, DistanceM: 100}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.v.Validate()
			if tt.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tt.ok && err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestRenderProducesSilhouette(t *testing.T) {
	r := NewRenderer(Config{})
	img, err := r.Render(body.SignYes, ReferenceView(), body.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if img.W != 256 || img.H != 256 {
		t.Fatalf("frame %dx%d", img.W, img.H)
	}
	mask := vision.OtsuBinarize(img)
	area := mask.Count()
	if area < 500 {
		t.Fatalf("silhouette too small: %d px", area)
	}
	if area > img.W*img.H/3 {
		t.Fatalf("silhouette implausibly large: %d px", area)
	}
}

func TestRenderInvalidInputs(t *testing.T) {
	r := NewRenderer(Config{})
	if _, err := r.Render(body.Sign(0), ReferenceView(), body.Options{}, nil); err == nil {
		t.Fatal("invalid sign should fail")
	}
	if _, err := r.Render(body.SignYes, View{}, body.Options{}, nil); err == nil {
		t.Fatal("invalid view should fail")
	}
}

func TestRenderDeterministicWithoutRng(t *testing.T) {
	r := NewRenderer(Config{})
	a, err := r.Render(body.SignNo, ReferenceView(), body.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Render(body.SignNo, ReferenceView(), body.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("noise-free rendering must be deterministic")
		}
	}
}

func TestRenderSeededReproducibility(t *testing.T) {
	r := NewRenderer(Config{NoiseSigma: 6, Clutter: 5})
	a, err := r.Render(body.SignNo, ReferenceView(), body.Options{}, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Render(body.SignNo, ReferenceView(), body.Options{}, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("same seed must reproduce the frame")
		}
	}
}

func TestSilhouetteShrinksWithDistance(t *testing.T) {
	r := NewRenderer(Config{})
	area := func(v View) int {
		img, err := r.Render(body.SignIdle, v, body.Options{}, nil)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		return vision.OtsuBinarize(img).Count()
	}
	near := area(View{AltitudeM: 3, DistanceM: 3})
	far := area(View{AltitudeM: 3, DistanceM: 9})
	if near <= far {
		t.Fatalf("near silhouette (%d) should exceed far (%d)", near, far)
	}
	// Roughly inverse-square: 3× distance → ≈9× smaller, allow slack.
	ratio := float64(near) / float64(far)
	if ratio < 4 || ratio > 16 {
		t.Fatalf("area ratio %v outside inverse-square ballpark", ratio)
	}
}

func TestForeshorteningNarrowsSilhouette(t *testing.T) {
	// The paper's dead-angle mechanism: at high relative azimuth the
	// signaller's lateral extent collapses.
	r := NewRenderer(Config{})
	width := func(azDeg float64) int {
		img, err := r.Render(body.SignYes, View{AltitudeM: 5, DistanceM: 3, AzimuthDeg: azDeg}, body.Options{}, nil)
		if err != nil {
			t.Fatalf("az %v: %v", azDeg, err)
		}
		mask := vision.OtsuBinarize(img)
		_, comp, err := vision.LargestComponent(mask)
		if err != nil {
			t.Fatal(err)
		}
		return comp.MaxX - comp.MinX
	}
	w0 := width(0)
	w65 := width(65)
	w90 := width(90)
	if !(w0 > w65 && w65 > w90) {
		t.Fatalf("foreshortening violated: w0=%d w65=%d w90=%d", w0, w65, w90)
	}
	if float64(w90) > 0.6*float64(w0) {
		t.Fatalf("side view too wide: %d vs %d", w90, w0)
	}
}

func TestMirrorViewFromBehind(t *testing.T) {
	// At 180° the silhouette is the mirror of the frontal one: for the
	// asymmetric No sign, the raised-arm side flips.
	r := NewRenderer(Config{})
	centroidSide := func(azDeg float64) float64 {
		img, err := r.Render(body.SignNo, View{AltitudeM: 5, DistanceM: 3, AzimuthDeg: azDeg}, body.Options{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		mask := vision.OtsuBinarize(img)
		_, comp, err := vision.LargestComponent(mask)
		if err != nil {
			t.Fatal(err)
		}
		// Signed offset of the blob centroid from the bbox centre: the
		// raised arm pulls it to one side.
		return comp.CenX - float64(comp.MinX+comp.MaxX)/2
	}
	front := centroidSide(0)
	back := centroidSide(180)
	if front*back >= 0 {
		t.Fatalf("mirrored view should flip the arm side: front=%v back=%v", front, back)
	}
}

func TestCleanFrameBimodal(t *testing.T) {
	r := NewRenderer(Config{BlurRadius: -1}) // negative → skip blur branch? ensure handled
	img, err := r.Render(body.SignAttention, ReferenceView(), body.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// With no blur/noise the frame holds (near-)binary intensities.
	hist := img.Histogram()
	nonzeroBins := 0
	for _, c := range hist {
		if c > 0 {
			nonzeroBins++
		}
	}
	if nonzeroBins > 4 {
		t.Fatalf("clean frame has %d intensity bins, want ≤4", nonzeroBins)
	}
}

func TestClutterDoesNotDefeatLargestComponent(t *testing.T) {
	r := NewRenderer(Config{Clutter: 8})
	rng := rand.New(rand.NewSource(4))
	img, err := r.Render(body.SignYes, ReferenceView(), body.Options{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	mask := vision.OtsuBinarize(img)
	mask = vision.Open(mask, 1)
	_, comp, err := vision.LargestComponent(mask)
	if err != nil {
		t.Fatal(err)
	}
	// The signaller spans most of the frame height at the reference view;
	// clutter blobs are small discs.
	if comp.MaxY-comp.MinY < img.H/4 {
		t.Fatalf("largest component too short (%d px) — clutter won?", comp.MaxY-comp.MinY)
	}
}

func TestConfigDefaults(t *testing.T) {
	r := NewRenderer(Config{})
	cfg := r.Config()
	if cfg.Width != 256 || cfg.Height != 256 || cfg.VFovDeg != 50 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
}

func TestSilhouetteVisibleAcrossPaperEnvelope(t *testing.T) {
	// Every (altitude, azimuth) combination the paper probes must at least
	// render a visible signaller.
	r := NewRenderer(Config{})
	for _, alt := range []float64{2, 3, 4, 5} {
		for _, az := range []float64{0, 30, 65, 90, 180} {
			v := View{AltitudeM: alt, DistanceM: 3, AzimuthDeg: az}
			img, err := r.Render(body.SignNo, v, body.Options{}, nil)
			if err != nil {
				t.Fatalf("%v: %v", v, err)
			}
			if vision.OtsuBinarize(img).Count() < 200 {
				t.Fatalf("%v: silhouette too small", v)
			}
		}
	}
}

func TestWristJitterChangesFrame(t *testing.T) {
	r := NewRenderer(Config{})
	a, _ := r.Render(body.SignYes, ReferenceView(), body.Options{}, nil)
	b, _ := r.Render(body.SignYes, ReferenceView(), body.Options{ArmJitterDeg: 10}, nil)
	diff := 0
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("arm jitter must change the rendered frame")
	}
}

func TestViewString(t *testing.T) {
	s := View{AltitudeM: 5, DistanceM: 3, AzimuthDeg: 65}.String()
	if s == "" || math.IsNaN(5) {
		t.Fatal("empty view string")
	}
}

func TestRenderFiguresWithBystander(t *testing.T) {
	r := NewRenderer(Config{})
	signaller, err := body.NewFigure(body.SignNo, body.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bystander, err := body.NewFigure(body.SignIdle, body.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Bystander 2.5 m to the signaller's left, slightly behind.
	bystander = bystander.Translate(geomV3(2.5, 1.0, 0))

	img, err := r.RenderFigures([]body.Figure{signaller, bystander}, ReferenceView(), nil)
	if err != nil {
		t.Fatal(err)
	}
	mask := vision.OtsuBinarize(img)
	_, comps := vision.LabelComponents(mask)
	if len(comps) < 2 {
		t.Fatalf("expected ≥2 components (signaller + bystander), got %d", len(comps))
	}
	// Empty figure list rejected.
	if _, err := r.RenderFigures(nil, ReferenceView(), nil); err == nil {
		t.Fatal("empty figure list should fail")
	}
}
