// Orchard mission: the paper's §I motivating scenario end to end — a drone
// tours the fly traps of a cherry orchard populated with a supervisor, a
// worker and a visitor, negotiating access (Fig 3) whenever a human blocks
// a trap, and reports which traps need pest action.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"hdc/internal/core"
	"hdc/internal/geom"
	"hdc/internal/mission"
	"hdc/internal/orchard"
)

func main() {
	const seed = 7

	sys, err := core.NewSystem(
		core.WithSeed(seed),
		core.WithHome(geom.V3(-8, -8, 0)),
	)
	if err != nil {
		log.Fatal(err)
	}

	// A 5×8 orchard block, a trap every 4th tree, three collaborators.
	world, err := orchard.Generate(orchard.Config{
		Rows: 5, Cols: 8, TrapEvery: 4,
		Humans: 3, PestRatePerHour: 25,
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		log.Fatal(err)
	}
	// Let the morning pass: pests accumulate, people move around.
	world.Step(3 * time.Hour)

	m, err := mission.New(sys, world, mission.Config{PestThreshold: 4})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== mission report ===")
	fmt.Println(rep)
	fmt.Println()
	fmt.Println("per-trap outcomes:")
	for _, v := range rep.Visits {
		status := "read"
		if !v.Read {
			status = "SKIPPED"
		}
		nego := ""
		if v.Negotiated {
			nego = fmt.Sprintf(" after negotiation (%v)", v.Outcome)
		}
		fmt.Printf("  trap %2d: %-7s %d pests%s\n", v.TrapID, status, v.PestCount, nego)
	}
	fmt.Println()
	fmt.Printf("traps over the action threshold: %d — spraying decision due\n", rep.ActionTraps)

	// Act two: the same block monitored by a fleet of three drones sharing
	// ONE recognition pool — recognition capacity as fleet infrastructure.
	// Each drone's conversation camera feeds the pool through its own
	// bounded ring, and the pool reports per-drone attribution.
	world2, err := orchard.Generate(orchard.Config{
		Rows: 5, Cols: 8, TrapEvery: 4,
		Humans: 3, PestRatePerHour: 25,
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		log.Fatal(err)
	}
	world2.Step(3 * time.Hour)

	fleet, err := mission.NewPooledFleet(3, world2, mission.Config{PestThreshold: 4},
		nil, // pool defaults: NumCPU workers, default scene + recogniser
		func(i int) []core.Option {
			return []core.Option{
				core.WithSeed(seed + int64(i)),
				core.WithHome(geom.V3(-8-float64(4*i), -8, 0)),
			}
		})
	if err != nil {
		log.Fatal(err)
	}
	defer fleet.Close()

	frep, err := fleet.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("=== fleet report (3 drones, one shared recognition pool) ===")
	for i, r := range frep.PerDrone {
		fmt.Printf("  drone %d: %s\n", i, r)
	}
	if stats, shared := fleet.PoolStats(); shared {
		fmt.Printf("pool: %d workers shared by %d drones\n", stats.Workers, stats.Attached)
		for _, o := range stats.Owners {
			fmt.Printf("  %s recognised %d frames (%d ring accepts, %d shed)\n",
				o.Label, o.Frames, o.IngestAccepted, o.IngestDropped)
		}
	}
}
