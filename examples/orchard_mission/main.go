// Orchard mission: the paper's §I motivating scenario end to end — a drone
// tours the fly traps of a cherry orchard populated with a supervisor, a
// worker and a visitor, negotiating access (Fig 3) whenever a human blocks
// a trap, and reports which traps need pest action.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"hdc/internal/core"
	"hdc/internal/geom"
	"hdc/internal/mission"
	"hdc/internal/orchard"
)

func main() {
	const seed = 7

	sys, err := core.NewSystem(
		core.WithSeed(seed),
		core.WithHome(geom.V3(-8, -8, 0)),
	)
	if err != nil {
		log.Fatal(err)
	}

	// A 5×8 orchard block, a trap every 4th tree, three collaborators.
	world, err := orchard.Generate(orchard.Config{
		Rows: 5, Cols: 8, TrapEvery: 4,
		Humans: 3, PestRatePerHour: 25,
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		log.Fatal(err)
	}
	// Let the morning pass: pests accumulate, people move around.
	world.Step(3 * time.Hour)

	m, err := mission.New(sys, world, mission.Config{PestThreshold: 4})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== mission report ===")
	fmt.Println(rep)
	fmt.Println()
	fmt.Println("per-trap outcomes:")
	for _, v := range rep.Visits {
		status := "read"
		if !v.Read {
			status = "SKIPPED"
		}
		nego := ""
		if v.Negotiated {
			nego = fmt.Sprintf(" after negotiation (%v)", v.Outcome)
		}
		fmt.Printf("  trap %2d: %-7s %d pests%s\n", v.TrapID, status, v.PestCount, nego)
	}
	fmt.Println()
	fmt.Printf("traps over the action threshold: %d — spraying decision due\n", rep.ActionTraps)
}
