// LED patterns: fly a complete circuit — take-off, a square patrol, landing
// — with the integrated drone agent and watch the all-round light of §II
// track every phase: danger default on the pad, navigation colours rotating
// with the direction of flight, and the Fig 2 extinguish-after-rotors-off
// landing sequence.
package main

import (
	"fmt"
	"log"

	"hdc/internal/drone"
	"hdc/internal/flight"
	"hdc/internal/geom"
)

func main() {
	agent, err := drone.New(drone.Config{}, nil)
	if err != nil {
		log.Fatal(err)
	}

	show := func(phase string) {
		fmt.Printf("--- %s (battery %.0f%%)\n", phase, agent.BatteryFrac()*100)
		fmt.Println(agent.Ring.Render())
	}

	show("on the pad: danger is the safety default")

	if _, err := agent.FlyPattern(flight.PatternTakeOff, geom.Vec3{}); err != nil {
		log.Fatal(err)
	}
	show("airborne after vertical take-off")

	// A square patrol: the navigation display must rotate with each leg.
	for _, wp := range []geom.Vec3{
		{X: 20, Y: 0, Z: 5},
		{X: 20, Y: 20, Z: 5},
		{X: 0, Y: 20, Z: 5},
		{X: 0, Y: 0, Z: 5},
	} {
		if _, err := agent.FlyPattern(flight.PatternCruise, wp); err != nil {
			log.Fatal(err)
		}
		show(fmt.Sprintf("cruising leg to (%.0f, %.0f)", wp.X, wp.Y))
	}

	// Communicative patterns while hovering.
	if _, err := agent.FlyPattern(flight.PatternNod, geom.Vec3{}); err != nil {
		log.Fatal(err)
	}
	show("after a Nod (drone-side Yes)")

	if _, err := agent.FlyPattern(flight.PatternLand, geom.Vec3{}); err != nil {
		log.Fatal(err)
	}
	show("landed: rotors off, then lights extinguished (Fig 2 order)")

	fmt.Println("event log:")
	fmt.Print(agent.Log.String())
}
