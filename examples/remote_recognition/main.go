// remote_recognition: recognition as a network service. Boots a local
// hdcserve-equivalent (internal/server over one shared core.System pool),
// then drives it with the Go client the way a remote operator would: a
// single frame, an ordered batch, and a session stream — finishing with the
// service's own /statsz occupancy report and a graceful drain.
//
//	go run ./examples/remote_recognition
//
// To run against a real server instead, start `go run ./cmd/hdcserve` and
// point client.New at its address.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"

	"hdc/internal/body"
	"hdc/internal/core"
	"hdc/internal/pipeline"
	"hdc/internal/raster"
	"hdc/internal/scene"
	"hdc/internal/server"
	"hdc/internal/server/client"
)

func main() {
	// ── The service side: one system, one pool, one HTTP boundary. ──
	sys, err := core.NewSystem(
		core.WithSceneConfig(scene.Config{}),
		core.WithPipelineConfig(pipeline.Config{Workers: 2}),
	)
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(sys, server.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv}
	go func() { _ = httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("service up on %s\n\n", base)

	// ── The operator side: everything below travels over HTTP. ──
	ctx := context.Background()
	c := client.New(base, nil)
	rend := scene.NewRenderer(scene.Config{})

	render := func(s body.Sign, az float64) *raster.Gray {
		v := scene.ReferenceView()
		v.AzimuthDeg = az
		f, err := rend.Render(s, v, body.Options{}, nil)
		if err != nil {
			log.Fatal(err)
		}
		return f
	}

	// 1. Single frame: POST /v1/recognize.
	res, err := c.Recognize(ctx, render(body.SignNo, 0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single frame:   sign=%-9s confidence=%.2f dist=%.2f latency=%.1fms\n",
		res.Sign, res.Confidence, res.Dist, float64(res.LatencyNS)/1e6)

	// 2. Ordered batch: POST /v1/batch. Results come back in input order.
	signs := []body.Sign{body.SignAttention, body.SignYes, body.SignNo, body.SignYes}
	batch := make([]*raster.Gray, len(signs))
	for i, s := range signs {
		batch[i] = render(s, float64(i*10-15))
	}
	results, err := c.RecognizeBatch(ctx, batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ordered batch:  ")
	for i, r := range results {
		sep := " → "
		if i == 0 {
			sep = ""
		}
		fmt.Printf("%s%s", sep, r.Sign)
	}
	fmt.Println()

	// 3. Session stream: ordered across requests, back-pressured by the
	// pool's stream window.
	st, err := c.OpenStream(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stream %s:      window=%d\n", st.ID, st.Window)
	for round := 0; round < 2; round++ {
		rs, err := st.Submit(ctx, render(body.SignYes, -25), render(body.SignNo, 25))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  round %d:      %s, %s\n", round+1, rs[0].Sign, rs[1].Sign)
	}
	if err := st.Close(ctx); err != nil {
		log.Fatal(err)
	}

	// 4. The service's own view: GET /statsz.
	stats, err := c.Statsz(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstatsz: pool workers=%d queue=%d/%d  sessions created=%d\n",
		stats.Pool.Workers, stats.Pool.QueueLen, stats.Pool.QueueCap, stats.Sessions.Created)
	for _, ep := range []string{"recognize", "batch", "stream_frames"} {
		s := stats.Endpoints[ep]
		fmt.Printf("  %-14s count=%-3d frames=%-3d p50=%.1fms p99=%.1fms\n",
			ep, s.Count, s.Frames, s.P50MS, s.P99MS)
	}

	// ── Graceful drain, in production order. ──
	srv.Drain()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	srv.Close()
	sys.Close()
	fmt.Println("\ndrained cleanly")
}
