// Sign sweep: reproduce the paper's §IV recognition-envelope study
// interactively — for each marshalling sign, sweep the relative azimuth
// over the full circle and the altitude over 1–15 m, and print where the
// SAX recogniser holds, where it turns erratic and where the dead angle
// lies (paper: reliable ≤65°, dead angle ≈100°).
package main

import (
	"fmt"
	"log"
	"strings"

	"hdc/internal/body"
	"hdc/internal/recognizer"
	"hdc/internal/scene"
)

func main() {
	rec, err := recognizer.New(recognizer.Config{})
	if err != nil {
		log.Fatal(err)
	}
	rend := scene.NewRenderer(scene.Config{})
	if err := rec.BuildReferences(rend, scene.ReferenceView()); err != nil {
		log.Fatal(err)
	}

	fmt.Println("azimuth envelope (5 m altitude, 3 m distance; # recognised, . not):")
	fmt.Println()
	azs := make([]float64, 0, 72)
	for az := 0.0; az < 360; az += 5 {
		azs = append(azs, az)
	}
	for _, s := range body.AllSigns() {
		pts, err := recognizer.SweepAzimuth(rec, rend, s, 5, 3, azs, 1, nil)
		if err != nil {
			log.Fatal(err)
		}
		var strip strings.Builder
		for _, p := range pts {
			if p.Recognized {
				strip.WriteByte('#')
			} else {
				strip.WriteByte('.')
			}
		}
		total, arcs := recognizer.DeadAngle(pts)
		fmt.Printf("%-9s  %s\n", s, strip.String())
		fmt.Printf("           dead: %3.0f° total %v\n", total, arcs)
	}
	fmt.Println()
	fmt.Println("           0°        45°       90°       135°      180°      225°      270°      315°")

	fmt.Println()
	fmt.Println("altitude envelope (0° azimuth, 3 m distance; paper: 2-5 m works):")
	fmt.Println()
	alts := []float64{1, 1.5, 2, 3, 4, 5, 6, 8, 10, 12, 15}
	for _, s := range body.AllSigns() {
		pts, err := recognizer.SweepAltitude(rec, rend, s, alts, 3, 0, 1, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s ", s)
		for _, p := range pts {
			mark := "."
			if p.Recognized {
				mark = "#"
			}
			fmt.Printf(" %4.1fm:%s", p.Param, mark)
		}
		fmt.Println()
	}
}
