// Dynamic gestures: the paper's §V future work, running — a signaller
// performs periodic marshalling gestures (Wave, Pump, Seesaw) and the
// drone's temporal recogniser identifies them from silhouette features
// regardless of where in the gesture cycle it started watching.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hdc/internal/body"
	"hdc/internal/core"
	"hdc/internal/gesture"
	"hdc/internal/pipeline"
	"hdc/internal/raster"
	"hdc/internal/scene"
)

func main() {
	rend := scene.NewRenderer(scene.Config{})
	rec, err := gesture.NewRecognizer(gesture.Config{}, rend, scene.ReferenceView())
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))

	fmt.Println("observing each gesture from random cycle phases, with arm jitter:")
	fmt.Println()
	for _, g := range gesture.Gestures() {
		for trial := 0; trial < 3; trial++ {
			phase := rng.Float64()
			m, err := rec.Observe(g, scene.ReferenceView(), phase,
				body.Options{ArmJitterDeg: rng.NormFloat64() * 2}, rng)
			status := "?"
			switch {
			case err != nil:
				status = "not recognised"
			case m.Gesture == g:
				status = fmt.Sprintf("recognised (dist %.2f, phase shift %d frames)", m.Dist, m.Shift)
			default:
				status = fmt.Sprintf("CONFUSED with %v", m.Gesture)
			}
			fmt.Printf("  %-7s performed from phase %.2f → %s\n", g, phase, status)
		}
	}

	fmt.Println()
	fmt.Println("live feed through the shared worker pool (ring-buffer ingest):")
	sys, err := core.NewSystem(core.WithPipelineConfig(pipeline.Config{Workers: 2}))
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	var pool raster.Pool
	live, err := rec.NewLive(sys, gesture.LiveConfig{OnFrame: pool.Put})
	if err != nil {
		log.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for m := range live.Matches() {
			if m.Err == nil {
				fmt.Printf("  window ending at frame %d → %v (dist %.2f)\n", m.End, m.Match.Gesture, m.Match.Dist)
			}
		}
	}()
	for i := 0; i < 72; i++ { // three cycles of Pump at camera cadence
		fig, err := gesture.FigureAt(gesture.GesturePump, float64(i)/24, body.Options{})
		if err != nil {
			log.Fatal(err)
		}
		frame := pool.Get(256, 256)
		if _, err := rend.RenderFiguresInto(frame, []body.Figure{fig}, scene.ReferenceView(), rng); err != nil {
			log.Fatal(err)
		}
		if err := live.Offer(frame); err != nil { // never blocks: overload drops oldest
			log.Fatal(err)
		}
	}
	live.Close()
	<-done
	st := live.Stats()
	fmt.Printf("  feed: %d offered, %d dropped, %d windows classified\n", st.Accepted, st.Dropped, st.Windows)

	fmt.Println()
	fmt.Println("a static Attention sign against the gesture recogniser (must be rejected):")
	fig, err := body.NewFigure(body.SignAttention, body.Options{})
	if err != nil {
		log.Fatal(err)
	}
	_ = fig
	// Static poses produce inactive feature channels; Classify rejects them.
	flatX := make([]float64, 24)
	flatA := make([]float64, 24)
	for i := range flatA {
		flatA[i] = 0.8 // constant aspect
	}
	if _, err := rec.Classify(flatX, flatA); err != nil {
		fmt.Println("  correctly rejected:", err)
	} else {
		fmt.Println("  UNEXPECTEDLY accepted")
	}
}
