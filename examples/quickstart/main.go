// Quickstart: one complete human-drone conversation (Fig 3 of the paper)
// through the public core API — the drone takes off, approaches a worker,
// pokes for attention, requests the worker's area with a rectangle pattern
// and acts on the recognised Yes/No marshalling sign.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hdc/internal/core"
	"hdc/internal/geom"
	"hdc/internal/human"
)

func main() {
	// Assemble the full stack: drone agent (flight + all-round light +
	// safety), synthetic camera, SAX recogniser and negotiation engine.
	sys, err := core.NewSystem(
		core.WithSeed(42),
		core.WithHome(geom.V3(0, -25, 0)), // base station 25 m south
	)
	if err != nil {
		log.Fatal(err)
	}

	// A partially trained orchard worker standing at the origin.
	rng := rand.New(rand.NewSource(42))
	worker, err := human.New("worker-anna", human.RoleWorker, geom.V2(0, 0), rng)
	if err != nil {
		log.Fatal(err)
	}

	// Run the negotiated-access conversation.
	res, err := sys.Converse(worker)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("conversation outcome:", res.Outcome)
	fmt.Println("pokes flown:         ", res.Pokes)
	fmt.Println("area requests flown: ", res.Requests)
	fmt.Println("duration:            ", res.Duration.Truncate(1e8))
	fmt.Println("drone position:      ", sys.Agent.D.S.Pos)
	fmt.Println("light mode:          ", sys.Agent.Ring.Mode())
	fmt.Println()
	fmt.Println("event transcript:")
	fmt.Print(sys.Log.String())
}
