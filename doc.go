// Package hdc is a production-quality Go reproduction of "Conceptual Design
// of Human-Drone Communication in Collaborative Environments" (Doran, Reif,
// Oehler, Stöhr, Capone — DSN 2020): a bidirectional human↔drone visual
// language for collaborative agricultural work, built on SAX-based
// marshalling-sign recognition, an LED all-round light, communicative
// flight patterns and a negotiated-access protocol.
//
// The public façade lives in internal/core (core.System); every substrate
// — geometry, time series + SAX, raster + vision, the articulated
// signaller, the synthetic drone camera, the kinematic airframe, the LED
// ring, the protocol engine and the orchard world — is its own package
// under internal/. Recognition scales through internal/pipeline, a
// streaming worker-pool service with pooled buffers and per-stream
// ordering, surfaced as core.System.NewStream/RecognizeBatch and driving
// the concurrent fleet in internal/mission. See DESIGN.md for the
// architecture and EXPERIMENTS.md for the per-figure reproduction report;
// `go run ./cmd/experiments` regenerates the latter.
package hdc
