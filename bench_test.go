// Benchmarks regenerating the hot path of every experiment in DESIGN.md's
// E1–E17 index (one benchmark per paper figure/result or extension). Run with:
//
//	go test -bench=. -benchmem
package hdc

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"hdc/internal/body"
	"hdc/internal/core"
	"hdc/internal/flight"
	"hdc/internal/geom"
	"hdc/internal/gesture"
	"hdc/internal/human"
	"hdc/internal/ledring"
	"hdc/internal/mission"
	"hdc/internal/orchard"
	"hdc/internal/pipeline"
	"hdc/internal/protocol"
	"hdc/internal/raster"
	"hdc/internal/recognizer"
	"hdc/internal/sax"
	"hdc/internal/scene"
	"hdc/internal/timeseries"
	"hdc/internal/trace"
	"hdc/internal/vision"
)

// mustPipeline builds the calibrated recogniser and reference frames once
// per benchmark.
func mustPipeline(b *testing.B) (*recognizer.Recognizer, *scene.Renderer) {
	b.Helper()
	rec, err := recognizer.New(recognizer.Config{})
	if err != nil {
		b.Fatal(err)
	}
	rend := scene.NewRenderer(scene.Config{})
	if err := rec.BuildReferences(rend, scene.ReferenceView()); err != nil {
		b.Fatal(err)
	}
	return rec, rend
}

func mustFrame(b *testing.B, rend *scene.Renderer, s body.Sign, v scene.View) *raster.Gray {
	b.Helper()
	f, err := rend.Render(s, v, body.Options{}, nil)
	if err != nil {
		b.Fatal(err)
	}
	return f
}

// BenchmarkE1LEDRing — Fig 1: full navigation refresh + decode per heading.
func BenchmarkE1LEDRing(b *testing.B) {
	ring, err := ledring.New(ledring.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ring.SetNavigation(geom.HeadingFromDeg(float64(i % 360)))
		if _, err := ledring.DecodeHeading(ring.LEDs()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2LandingPattern — Fig 2: full take-off + landing cycle with the
// rotor/lights sequencing.
func BenchmarkE2LandingPattern(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d, err := flight.New(flight.DefaultParams(), geom.V3(0, 0, 0))
		if err != nil {
			b.Fatal(err)
		}
		e := flight.NewExecutor(d)
		if _, err := e.Fly(flight.PatternTakeOff, geom.Vec3{}); err != nil {
			b.Fatal(err)
		}
		if _, err := e.Fly(flight.PatternLand, geom.Vec3{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3Negotiation — Fig 3: one full protocol conversation against
// the behavioural human model (no rendering).
func BenchmarkE3Negotiation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		h, err := human.New("b", human.RoleWorker, geom.V2(0, 0), rng)
		if err != nil {
			b.Fatal(err)
		}
		env := protocol.NewSimEnv(h, rng)
		eng := protocol.NewEngine(protocol.Config{}, nil)
		if _, err := eng.Negotiate(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4TimeSeries — Fig 4: silhouette signature extraction (contour →
// centroid-distance series) from the 65° 'No' frame.
func BenchmarkE4TimeSeries(b *testing.B) {
	_, rend := mustPipeline(b)
	frame := mustFrame(b, rend, body.SignNo, scene.View{AltitudeM: 5, DistanceM: 3, AzimuthDeg: 65})
	mask := vision.OtsuBinarize(frame)
	mask = vision.Open(mask, 1)
	mask = vision.Close(mask, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := vision.ExtractSignatureNormalized(mask, 128); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5RecognitionLatency — §IV timings: the full pipeline on the 0°
// and 65° frames (paper: 38 ms / 27 ms on Python+OpenCV).
func BenchmarkE5RecognitionLatency(b *testing.B) {
	rec, rend := mustPipeline(b)
	for _, az := range []float64{0, 65} {
		frame := mustFrame(b, rend, body.SignNo, scene.View{AltitudeM: 5, DistanceM: 3, AzimuthDeg: az})
		b.Run(map[float64]string{0: "az0", 65: "az65"}[az], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := rec.Recognize(frame); err != nil && !errors.Is(err, recognizer.ErrNoSign) {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6AltitudeSweep — §IV altitude envelope: one render+recognise
// cycle per paper altitude.
func BenchmarkE6AltitudeSweep(b *testing.B) {
	rec, rend := mustPipeline(b)
	alts := []float64{2, 3, 4, 5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := recognizer.SweepAltitude(rec, rend, body.SignNo, alts, 3, 0, 1, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7AzimuthSweep — §IV dead angle: render+recognise across a
// quarter circle.
func BenchmarkE7AzimuthSweep(b *testing.B) {
	rec, rend := mustPipeline(b)
	azs := []float64{0, 15, 30, 45, 65, 90}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := recognizer.SweepAzimuth(rec, rend, body.SignNo, 5, 3, azs, 1, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8SignUniqueness — §IV uniqueness: the pairwise
// rotation/mirror-minimised distance matrix over the reference database.
func BenchmarkE8SignUniqueness(b *testing.B) {
	rec, _ := mustPipeline(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := rec.Database().PairwiseExactDist(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9Throughput — §IV fps claim: sustained single-frame pipeline
// throughput per frame size (compare ns/op against 33 ms and 16 ms).
func BenchmarkE9Throughput(b *testing.B) {
	for _, size := range []int{128, 256, 512} {
		rec, err := recognizer.New(recognizer.Config{})
		if err != nil {
			b.Fatal(err)
		}
		rend := scene.NewRenderer(scene.Config{Width: size, Height: size})
		if err := rec.BuildReferences(rend, scene.ReferenceView()); err != nil {
			b.Fatal(err)
		}
		frame := mustFrame(b, rend, body.SignNo, scene.ReferenceView())
		b.Run(map[int]string{128: "128px", 256: "256px", 512: "512px"}[size], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := rec.Recognize(frame); err != nil && !errors.Is(err, recognizer.ErrNoSign) {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE10ParameterGrid — ref [22] tuning: SAX encode across the
// parameter grid on a fixed signature.
func BenchmarkE10ParameterGrid(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	sig := make(timeseries.Series, 128)
	for i := range sig {
		sig[i] = rng.NormFloat64()
	}
	encoders := []*sax.Encoder{}
	for _, w := range []int{8, 16, 32} {
		for _, a := range []int{3, 5, 9} {
			e, err := sax.NewEncoder(w, a)
			if err != nil {
				b.Fatal(err)
			}
			encoders = append(encoders, e)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range encoders {
			if _, err := e.Encode(sig); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkE11LEDAblation — §II display ablation: decode error integration
// across LED counts.
func BenchmarkE11LEDAblation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, n := range []int{6, 10, 24} {
			ring, err := ledring.New(ledring.Options{LEDCount: n})
			if err != nil {
				b.Fatal(err)
			}
			for deg := 0.0; deg < 360; deg += 15 {
				ring.SetNavigation(geom.HeadingFromDeg(deg))
				if _, err := ledring.DecodeHeading(ring.LEDs()); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkE12PatternLegibility — §III unmistakability: fly + classify one
// communicative pattern.
func BenchmarkE12PatternLegibility(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d, err := flight.New(flight.DefaultParams(), geom.V3(0, 0, 0))
		if err != nil {
			b.Fatal(err)
		}
		e := flight.NewExecutor(d)
		if _, err := e.Fly(flight.PatternTakeOff, geom.Vec3{}); err != nil {
			b.Fatal(err)
		}
		p := flight.CommunicativePatterns()[i%4]
		tr, err := e.Fly(p, geom.V3(6, 2, 0))
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := flight.Classify(tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE13OrchardMission — §I use case: a compact full-stack mission
// (flight + lights + rendered perception + protocol + world).
func BenchmarkE13OrchardMission(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys, err := core.NewSystem(core.WithSeed(int64(i+1)), core.WithHome(geom.V3(-5, -5, 0)))
		if err != nil {
			b.Fatal(err)
		}
		world, err := orchard.Generate(orchard.Config{
			Rows: 2, Cols: 4, TrapEvery: 4, Humans: 2,
		}, rand.New(rand.NewSource(int64(i+1))))
		if err != nil {
			b.Fatal(err)
		}
		world.Step(time.Hour)
		m, err := mission.New(sys, world, mission.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE14GestureObserve — §V dynamic signals: one full gesture
// observation window (24 rendered frames) plus classification.
func BenchmarkE14GestureObserve(b *testing.B) {
	rend := scene.NewRenderer(scene.Config{})
	rec, err := gesture.NewRecognizer(gesture.Config{}, rend, scene.ReferenceView())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := gesture.Gestures()[i%3]
		if _, err := rec.Observe(g, scene.ReferenceView(), 0.3, body.Options{}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE15DeadZoneCapture — §IV negative result: one dead-zone capture
// with full match diagnostics.
func BenchmarkE15DeadZoneCapture(b *testing.B) {
	rec, rend := mustPipeline(b)
	frame := mustFrame(b, rend, body.SignNo, scene.View{AltitudeM: 5, DistanceM: 3, AzimuthDeg: 90})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rec.Recognize(frame); err != nil && !errors.Is(err, recognizer.ErrNoSign) {
			b.Fatal(err)
		}
	}
}

// benchPipelineThroughput pushes b.N frames through one stream of a pool
// with the given worker count, measuring sustained frames/sec of the
// streaming service (ns/op = time per frame).
func benchPipelineThroughput(b *testing.B, workers int) {
	rec, rend := mustPipeline(b)
	frame := mustFrame(b, rend, body.SignNo, scene.ReferenceView())
	p, err := pipeline.New(rec, pipeline.Config{
		Workers: workers, QueueDepth: 4 * workers, StreamWindow: 4 * workers,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	st, err := p.NewStream()
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan int)
	go func() {
		n := 0
		for range st.Results() {
			n++
		}
		done <- n
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Submit(frame); err != nil {
			b.Fatal(err)
		}
	}
	st.Close()
	if n := <-done; n != b.N {
		b.Fatalf("delivered %d/%d results", n, b.N)
	}
}

// BenchmarkPipelineThroughput — the tentpole measurement: single-worker vs
// NumCPU-worker frame throughput of the streaming recognition service. On a
// multi-core runner the workers=NumCPU variant should sustain several times
// the single-worker frames/sec; per-frame allocations (B/op) stay flat with
// worker count and well below the unpooled front half (BenchmarkE4).
func BenchmarkPipelineThroughput(b *testing.B) {
	counts := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchPipelineThroughput(b, workers)
		})
	}
}

// BenchmarkPipelineBatch — the RecognizeBatch convenience over the same
// pool: 16-frame batches through NumCPU workers.
func BenchmarkPipelineBatch(b *testing.B) {
	rec, rend := mustPipeline(b)
	frames := make([]*raster.Gray, 16)
	for i := range frames {
		frames[i] = mustFrame(b, rend, body.SignNo, scene.View{
			AltitudeM: 5, DistanceM: 3, AzimuthDeg: float64(i * 4),
		})
	}
	p, err := pipeline.New(rec, pipeline.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.RecognizeBatch(frames); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestRing — the live-feed ingest layer's producer cost: Offer
// against a ring whose pool is saturated, i.e. the worst case a camera loop
// pays per frame (an eviction plus a counter update, never a block). The
// per-op time must stay in the sub-microsecond range that makes Offer safe
// on a capture thread.
func BenchmarkIngestRing(b *testing.B) {
	rec, rend := mustPipeline(b)
	p, err := pipeline.New(rec, pipeline.Config{Workers: 1, QueueDepth: 1, StreamWindow: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	// A worker stage slow enough that the ring is permanently saturated.
	st, err := p.NewProcStream(func(sc *recognizer.Scratch, seq uint64, frame *raster.Gray) (recognizer.Result, error) {
		time.Sleep(100 * time.Microsecond)
		return recognizer.Result{}, nil
	})
	if err != nil {
		b.Fatal(err)
	}
	go func() {
		for range st.Results() {
		}
	}()
	src, err := pipeline.NewSource(st, pipeline.SourceConfig{Capacity: 16})
	if err != nil {
		b.Fatal(err)
	}
	frame := mustFrame(b, rend, body.SignNo, scene.ReferenceView())
	// A single Offer is a few hundred nanoseconds — below what the CI
	// gate's one-iteration samples can time reliably — so each benchmark op
	// is a burst of 16384 Offers (one op ≈ sixteen seconds of a 1 kfps camera loop).
	const burst = 16384
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < burst; j++ {
			if err := src.Offer(frame); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	src.Close()
	st.Close()
}

// BenchmarkStageBreakdown — the per-stage latency medians of the streaming
// pipeline, read back from the always-on trace aggregates rather than timed
// here: the parent drives a fixed batch through a traced pool, then each
// sub-benchmark reports its stage's p50 via ReportMetric. These lines are
// in the benchgate key set, which is what lets a tripped CI perf gate name
// the regressed stage (cmd/benchgate's "regressed stage:" failure output)
// instead of just reporting that the geomean moved.
func BenchmarkStageBreakdown(b *testing.B) {
	rec, rend := mustPipeline(b)
	frame := mustFrame(b, rend, body.SignNo, scene.ReferenceView())
	p, err := pipeline.New(rec, pipeline.Config{Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()

	const frames = 64
	batch := make([]*raster.Gray, frames)
	for i := range batch {
		batch[i] = frame
	}
	if _, _, err := p.RecognizeBatch(batch); err != nil {
		b.Fatal(err)
	}
	// The deliver terminal is stamped by the emit goroutine just after the
	// collector reads the result, so give the tail a moment to settle.
	tr := p.Tracer()
	deadline := time.Now().Add(2 * time.Second)
	for tr.Snapshot(0).Totals.Delivered < frames && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	snap := tr.Snapshot(0)
	byStage := make(map[string]int64, len(snap.Stages))
	for _, sp := range snap.Stages {
		if sp.Count > 0 {
			byStage[sp.Stage] = sp.P50Ns
		}
	}
	for _, name := range trace.SpanNames() {
		p50, ok := byStage[name]
		if !ok {
			continue // no ingest ring on the batch path
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// The measurement already happened in the traced batch above;
				// the loop only satisfies the benchmark contract.
			}
			b.ReportMetric(float64(p50), "ns/op")
		})
	}
}

// BenchmarkE16FleetPartition — fleet extension: trap partitioning across
// fleet sizes.
func BenchmarkE16FleetPartition(b *testing.B) {
	world, err := orchard.Generate(orchard.Config{Rows: 8, Cols: 12, TrapEvery: 2},
		rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range []int{1, 2, 3, 4} {
			mission.PartitionTraps(world.Traps, k)
		}
	}
}
