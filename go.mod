module hdc

go 1.22.0


// hdclint's analysis framework — the repo's first external dependency.
// Pinned to the exact revision Go 1.24 vendors for its own cmd/vet
// (src/cmd/vendor/modules.txt); the source subset lives in
// third_party/golang.org/x/tools so builds never touch the network and
// the pin cannot drift from the checked-in source.
require golang.org/x/tools v0.28.1-0.20250131145412-98746475647e

replace golang.org/x/tools => ./third_party/golang.org/x/tools
