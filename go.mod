module hdc

go 1.22
