// Command hdclint is the repo's static-analysis gate: a multichecker
// over the internal/lint suite (poolcheck, atomiccheck, failpointcheck,
// sentinelerr) that proves the hand-maintained hot-path contracts at
// compile time. See DESIGN.md §"The analysis layer".
//
// It speaks the go vet driver protocol, so the canonical invocation is
//
//	go vet -vettool=$(which hdclint) ./...
//
// and it is also directly runnable: given package patterns instead of a
// vet config file, it re-executes itself through `go vet`, which supplies
// type information, export data and analysis facts for the whole build
// graph:
//
//	hdclint ./...
//
// Diagnostics are suppressed per line with
// `//hdclint:ignore <analyzer> <justification>`; the exit status is
// non-zero when any unsuppressed diagnostic fires.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"hdc/internal/lint/suite"
)

func main() {
	args := os.Args[1:]
	// The vet driver invokes the tool several ways — `-V=full` to stamp
	// the build cache, `-flags` to enumerate flags, `<flags> unit.cfg`
	// per package — all of which carry a flag or a .cfg file. A command
	// line of bare package patterns (or nothing) is a human at a shell.
	if !standaloneArgs(args) {
		unitchecker.Main(suite.Analyzers()...) // does not return
	}
	os.Exit(standalone(args))
}

// standaloneArgs reports whether the command line is package patterns
// typed by a human rather than a go vet driver invocation.
func standaloneArgs(args []string) bool {
	for _, a := range args {
		if strings.HasPrefix(a, "-") || strings.HasSuffix(a, ".cfg") {
			return false
		}
	}
	return true
}

// standalone re-invokes the binary through `go vet`, turning package
// patterns into a full driven analysis. The child's diagnostics stream
// through unchanged; the exit status is go vet's.
func standalone(args []string) int {
	// Hard recursion guard: the re-exec below must only ever reach the
	// unitchecker path. If a protocol change in go vet ever routes a
	// driver invocation here again, fail instead of forking.
	if os.Getenv("HDCLINT_CHILD") != "" {
		fmt.Fprintln(os.Stderr, "hdclint: recursive standalone invocation (unrecognised go vet driver protocol); not re-executing")
		return 2
	}
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "hdclint: cannot locate own binary: %v\n", err)
		return 2
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	cmd.Env = append(os.Environ(), "HDCLINT_CHILD=1")
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "hdclint: running go vet: %v\n", err)
		return 2
	}
	return 0
}
