package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baselineOut = `goos: linux
BenchmarkPipelineThroughput/workers=1-8     	 1	 1000000 ns/op	 2048 B/op	 12 allocs/op
BenchmarkPipelineThroughput/workers=1-8     	 1	 1100000 ns/op	 2048 B/op	 12 allocs/op
BenchmarkPipelineThroughput/workers=1-8     	 1	  900000 ns/op	 2048 B/op	 12 allocs/op
BenchmarkDatabaseLookup1000-8               	 1	 3500000 ns/op
BenchmarkServerBatch-8                      	 1	 9000000 ns/op
PASS
`

// TestParseBenchLine pins the parser on the formats go test emits.
func TestParseBenchLine(t *testing.T) {
	name, ns, ok := parseBenchLine("BenchmarkDatabaseLookup1000-8 \t 1\t 3500000 ns/op")
	if !ok || name != "BenchmarkDatabaseLookup1000" || ns != 3500000 {
		t.Fatalf("got %q %v %v", name, ns, ok)
	}
	// GOMAXPROCS suffix stripped even with sub-benchmarks.
	name, _, ok = parseBenchLine("BenchmarkPipelineThroughput/workers=1-16 \t 1\t 42 ns/op")
	if !ok || name != "BenchmarkPipelineThroughput/workers=1" {
		t.Fatalf("got %q", name)
	}
	// Non-benchmark lines ignored.
	if _, _, ok := parseBenchLine("PASS"); ok {
		t.Fatal("PASS parsed as benchmark")
	}
	if _, _, ok := parseBenchLine("goos: linux"); ok {
		t.Fatal("header parsed as benchmark")
	}
}

// TestGatePasses: identical performance → ratio 1 → pass, exit 0.
func TestGatePasses(t *testing.T) {
	base := writeBench(t, "base.txt", baselineOut)
	cur := writeBench(t, "cur.txt", baselineOut)
	var out, errOut bytes.Buffer
	if code := run([]string{"-baseline", base, "-current", cur}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "benchgate: PASS") {
		t.Fatalf("output: %s", out.String())
	}
	if !strings.Contains(out.String(), "geomean ratio over 3 shared benchmarks") {
		t.Fatalf("output: %s", out.String())
	}
}

// TestGateFailsOnRegression: a uniform 2× slowdown must trip the 25% gate.
func TestGateFailsOnRegression(t *testing.T) {
	slow := strings.NewReplacer(
		"1000000 ns/op", "2000000 ns/op",
		"1100000 ns/op", "2200000 ns/op",
		" 900000 ns/op", "1800000 ns/op",
		"3500000 ns/op", "7000000 ns/op",
		"9000000 ns/op", "18000000 ns/op",
	).Replace(baselineOut)
	base := writeBench(t, "base.txt", baselineOut)
	cur := writeBench(t, "cur.txt", slow)
	var out, errOut bytes.Buffer
	if code := run([]string{"-baseline", base, "-current", cur, "-threshold", "1.25"}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(errOut.String(), "perf regression") {
		t.Fatalf("stderr: %s", errOut.String())
	}
}

// TestGateUsesMedians: one wild outlier among the repetitions must not trip
// the gate.
func TestGateUsesMedians(t *testing.T) {
	noisy := strings.Replace(baselineOut,
		" 1100000 ns/op", " 99000000 ns/op", 1) // one bad repetition
	base := writeBench(t, "base.txt", baselineOut)
	cur := writeBench(t, "cur.txt", noisy)
	var out, errOut bytes.Buffer
	if code := run([]string{"-baseline", base, "-current", cur}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s\n%s", code, errOut.String(), out.String())
	}
}

// TestDisjointNamesReportedNotGated: benchmarks present on only one side
// are noted but do not gate; fully disjoint sets are an error.
func TestDisjointNamesReportedNotGated(t *testing.T) {
	extra := baselineOut + "BenchmarkOnlyInCurrent-8 \t 1\t 123 ns/op\n"
	base := writeBench(t, "base.txt", baselineOut)
	cur := writeBench(t, "cur.txt", extra)
	var out, errOut bytes.Buffer
	if code := run([]string{"-baseline", base, "-current", cur}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "only in current") {
		t.Fatalf("output: %s", out.String())
	}

	disjoint := writeBench(t, "disj.txt", "BenchmarkOther-8 \t 1\t 5 ns/op\n")
	if code := run([]string{"-baseline", base, "-current", disjoint}, &out, &errOut); code != 1 {
		t.Fatalf("disjoint exit %d, want 1", code)
	}
}

// TestZeroIterationLinesIgnored: a benchmark line reporting zero iterations
// carries no measurement and must be dropped by the parser — present in
// only one file it becomes an un-gated note, present in both it must not
// poison the medians.
func TestZeroIterationLinesIgnored(t *testing.T) {
	if _, _, ok := parseBenchLine("BenchmarkBroken-8 \t 0\t 0 ns/op"); ok {
		t.Fatal("zero-iteration line parsed as a measurement")
	}
	if _, _, ok := parseBenchLine("BenchmarkBroken-8 \t notanumber\t 5 ns/op"); ok {
		t.Fatal("garbage iteration count parsed as a measurement")
	}
	zeroed := baselineOut + "BenchmarkBroken-8 \t 0\t 999999999 ns/op\n"
	base := writeBench(t, "base.txt", baselineOut)
	cur := writeBench(t, "cur.txt", zeroed)
	var out, errOut bytes.Buffer
	if code := run([]string{"-baseline", base, "-current", cur}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if strings.Contains(out.String(), "BenchmarkBroken") {
		t.Fatalf("zero-iteration benchmark leaked into the report:\n%s", out.String())
	}
}

// TestMissingBaselineKey: a benchmark in the current run with no baseline
// key is noted, never gated — even when it is wildly slow.
func TestMissingBaselineKey(t *testing.T) {
	extra := baselineOut + "BenchmarkBrandNew-8 \t 1\t 999999999 ns/op\n"
	base := writeBench(t, "base.txt", baselineOut)
	cur := writeBench(t, "cur.txt", extra)
	var out, errOut bytes.Buffer
	if code := run([]string{"-baseline", base, "-current", cur}, &out, &errOut); code != 0 {
		t.Fatalf("a missing baseline key tripped the gate: %s", errOut.String())
	}
	if !strings.Contains(out.String(), "note: BenchmarkBrandNew only in current (not gated)") {
		t.Fatalf("missing-baseline-key note absent:\n%s", out.String())
	}
}

// TestFailureNamesWorstOffender: when the gate trips, the failure line must
// name the single worst benchmark, and the delta table must be sorted with
// it on top.
func TestFailureNamesWorstOffender(t *testing.T) {
	slow := strings.NewReplacer(
		"3500000 ns/op", "35000000 ns/op", // DatabaseLookup 10× — the offender
		"9000000 ns/op", "13500000 ns/op", // ServerBatch 1.5×
	).Replace(baselineOut)
	base := writeBench(t, "base.txt", baselineOut)
	cur := writeBench(t, "cur.txt", slow)
	var out, errOut bytes.Buffer
	if code := run([]string{"-baseline", base, "-current", cur, "-threshold", "1.25"}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(errOut.String(), "worst offender: BenchmarkDatabaseLookup1000 (10.000× baseline)") {
		t.Fatalf("failure line does not name the offender: %s", errOut.String())
	}
	// Sorted worst-first: the offender's row precedes the others.
	body := out.String()
	if strings.Index(body, "BenchmarkDatabaseLookup1000") > strings.Index(body, "BenchmarkServerBatch") {
		t.Fatalf("delta table not sorted worst-first:\n%s", body)
	}
}

// TestFailureNamesRegressedStage is the stage-attribution self-test: with
// the per-stage sub-benchmarks in the key set and one stage deliberately
// slowed, the gate's failure output must name that stage.
func TestFailureNamesRegressedStage(t *testing.T) {
	const stageBase = `goos: linux
BenchmarkPipelineThroughput/workers=1-8 	 1	 1000000 ns/op
BenchmarkStageBreakdown/binarize-8      	 1	  200000 ns/op
BenchmarkStageBreakdown/features-8      	 1	  300000 ns/op
BenchmarkStageBreakdown/classify-8      	 1	  400000 ns/op
PASS
`
	// classify deliberately slowed 8×; everything else at parity.
	slow := strings.Replace(stageBase, "BenchmarkStageBreakdown/classify-8      \t 1\t  400000 ns/op",
		"BenchmarkStageBreakdown/classify-8      \t 1\t 3200000 ns/op", 1)
	base := writeBench(t, "base.txt", stageBase)
	cur := writeBench(t, "cur.txt", slow)
	var out, errOut bytes.Buffer
	if code := run([]string{"-baseline", base, "-current", cur, "-threshold", "1.25"}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(errOut.String(), "regressed stage: classify (8.000× baseline)") {
		t.Fatalf("failure output does not name the slowed stage: %s", errOut.String())
	}
	if !strings.Contains(errOut.String(), "worst offender: BenchmarkStageBreakdown/classify") {
		t.Fatalf("offender line: %s", errOut.String())
	}
}

// TestUsageErrors pins flag handling.
func TestUsageErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("missing flags exit %d, want 2", code)
	}
	if code := run([]string{"-bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("bad flag exit %d, want 2", code)
	}
	if code := run([]string{"-baseline", "/nonexistent", "-current", "/nonexistent"}, &out, &errOut); code != 1 {
		t.Fatalf("missing file exit %d, want 1", code)
	}
}
