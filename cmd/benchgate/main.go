// Command benchgate is the CI perf-regression gate: it compares two `go
// test -bench` outputs (a checked-in baseline and the current run) and fails
// when the geometric-mean time/op ratio across the benchmarks they share
// exceeds a threshold.
//
//	go test -run='^$' -bench='...' -benchtime=1x -count=5 ./... > current.txt
//	go run ./cmd/benchgate -baseline bench_baseline.txt -current current.txt -threshold 1.25
//
// Per-benchmark medians (over -count repetitions) feed the ratios, so a
// single noisy repetition cannot trip the gate; benchstat renders the same
// pair of files as a human-readable table in the CI log. Benchmarks present
// on only one side are reported but never gate — the baseline may have been
// recorded on a machine with a different core count (sub-benchmarks such as
// workers=N legitimately differ). Refresh the baseline by committing the
// bench-output artifact of a green CI run (see .github/workflows/ci.yml).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main. Exit codes: 0 pass, 1 regression or
// missing data, 2 usage error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baseline := fs.String("baseline", "", "baseline benchmark output file")
	current := fs.String("current", "", "current benchmark output file")
	threshold := fs.Float64("threshold", 1.25, "fail when geomean(current/baseline) exceeds this ratio")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *baseline == "" || *current == "" {
		fmt.Fprintln(stderr, "benchgate: -baseline and -current are required")
		return 2
	}
	if err := gate(*baseline, *current, *threshold, stdout); err != nil {
		fmt.Fprintln(stderr, "benchgate:", err)
		return 1
	}
	return 0
}

// gate loads both files and applies the geomean threshold.
func gate(baselinePath, currentPath string, threshold float64, stdout io.Writer) error {
	base, err := loadBench(baselinePath)
	if err != nil {
		return err
	}
	cur, err := loadBench(currentPath)
	if err != nil {
		return err
	}
	if len(base) == 0 {
		return fmt.Errorf("no benchmark results in %s", baselinePath)
	}
	if len(cur) == 0 {
		return fmt.Errorf("no benchmark results in %s", currentPath)
	}

	names := make([]string, 0, len(base))
	for name := range base {
		if _, ok := cur[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return fmt.Errorf("baseline and current share no benchmarks")
	}

	logSum := 0.0
	fmt.Fprintf(stdout, "%-60s %14s %14s %8s\n", "benchmark", "baseline ns/op", "current ns/op", "ratio")
	for _, name := range names {
		b := median(base[name])
		c := median(cur[name])
		ratio := c / b
		logSum += math.Log(ratio)
		fmt.Fprintf(stdout, "%-60s %14.0f %14.0f %8.3f\n", name, b, c, ratio)
	}
	geomean := math.Exp(logSum / float64(len(names)))
	fmt.Fprintf(stdout, "geomean ratio over %d shared benchmarks: %.3f (threshold %.3f)\n",
		len(names), geomean, threshold)

	for name := range base {
		if _, ok := cur[name]; !ok {
			fmt.Fprintf(stdout, "note: %s only in baseline (not gated)\n", name)
		}
	}
	for name := range cur {
		if _, ok := base[name]; !ok {
			fmt.Fprintf(stdout, "note: %s only in current (not gated)\n", name)
		}
	}

	if geomean > threshold {
		return fmt.Errorf("geomean ratio %.3f exceeds threshold %.3f — perf regression", geomean, threshold)
	}
	fmt.Fprintln(stdout, "benchgate: PASS")
	return nil
}

// loadBench parses a `go test -bench` output file into name → ns/op samples.
// Benchmark lines look like:
//
//	BenchmarkName/sub=1-8   	       5	 123456 ns/op	 2048 B/op	 12 allocs/op
//
// The trailing -N GOMAXPROCS suffix is stripped so runs from machines with
// different core counts still share names.
func loadBench(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string][]float64)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		name, nsop, ok := parseBenchLine(sc.Text())
		if ok {
			out[name] = append(out[name], nsop)
		}
	}
	return out, sc.Err()
}

// parseBenchLine extracts (name, ns/op) from one benchmark result line.
func parseBenchLine(line string) (string, float64, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", 0, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", 0, false
	}
	// fields: name, iterations, value, unit, [more pairs...]
	var nsop float64
	found := false
	for i := 2; i+1 < len(fields); i += 2 {
		if fields[i+1] == "ns/op" {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return "", 0, false
			}
			nsop, found = v, true
			break
		}
	}
	if !found {
		return "", 0, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix (the part after the last '-' when it is
	// all digits).
	if i := strings.LastIndex(name, "-"); i > 0 {
		digits := name[i+1:]
		if digits != "" && strings.Trim(digits, "0123456789") == "" {
			name = name[:i]
		}
	}
	return name, nsop, true
}

// median returns the middle sample (mean of the two middles for even n).
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
