// Command benchgate is the CI perf-regression gate: it compares two `go
// test -bench` outputs (a checked-in baseline and the current run) and fails
// when the geometric-mean time/op ratio across the benchmarks they share
// exceeds a threshold.
//
//	go test -run='^$' -bench='...' -benchtime=1x -count=5 ./... > current.txt
//	go run ./cmd/benchgate -baseline bench_baseline.txt -current current.txt -threshold 1.25
//
// Per-benchmark medians (over -count repetitions) feed the ratios, so a
// single noisy repetition cannot trip the gate; benchstat renders the same
// pair of files as a human-readable table in the CI log. Benchmarks present
// on only one side are reported but never gate — the baseline may have been
// recorded on a machine with a different core count (sub-benchmarks such as
// workers=N legitimately differ). Refresh the baseline by committing the
// bench-output artifact of a green CI run (see .github/workflows/ci.yml).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main. Exit codes: 0 pass, 1 regression or
// missing data, 2 usage error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baseline := fs.String("baseline", "", "baseline benchmark output file")
	current := fs.String("current", "", "current benchmark output file")
	threshold := fs.Float64("threshold", 1.25, "fail when geomean(current/baseline) exceeds this ratio")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *baseline == "" || *current == "" {
		fmt.Fprintln(stderr, "benchgate: -baseline and -current are required")
		return 2
	}
	if err := gate(*baseline, *current, *threshold, stdout); err != nil {
		fmt.Fprintln(stderr, "benchgate:", err)
		return 1
	}
	return 0
}

// gate loads both files and applies the geomean threshold.
func gate(baselinePath, currentPath string, threshold float64, stdout io.Writer) error {
	base, err := loadBench(baselinePath)
	if err != nil {
		return err
	}
	cur, err := loadBench(currentPath)
	if err != nil {
		return err
	}
	if len(base) == 0 {
		return fmt.Errorf("no benchmark results in %s", baselinePath)
	}
	if len(cur) == 0 {
		return fmt.Errorf("no benchmark results in %s", currentPath)
	}

	rows := make([]benchRow, 0, len(base))
	for name := range base {
		if _, ok := cur[name]; ok {
			b := median(base[name])
			c := median(cur[name])
			rows = append(rows, benchRow{name: name, base: b, cur: c, ratio: c / b})
		}
	}
	if len(rows) == 0 {
		return fmt.Errorf("baseline and current share no benchmarks")
	}
	// Worst regression first: when the gate trips, the top of the table is
	// the bisect starting point.
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].ratio != rows[j].ratio {
			return rows[i].ratio > rows[j].ratio
		}
		return rows[i].name < rows[j].name
	})

	logSum := 0.0
	fmt.Fprintf(stdout, "%-60s %14s %14s %8s\n", "benchmark", "baseline ns/op", "current ns/op", "ratio")
	for _, r := range rows {
		logSum += math.Log(r.ratio)
		fmt.Fprintf(stdout, "%-60s %14.0f %14.0f %8.3f\n", r.name, r.base, r.cur, r.ratio)
	}
	geomean := math.Exp(logSum / float64(len(rows)))
	fmt.Fprintf(stdout, "geomean ratio over %d shared benchmarks: %.3f (threshold %.3f)\n",
		len(rows), geomean, threshold)

	for name := range base {
		if _, ok := cur[name]; !ok {
			fmt.Fprintf(stdout, "note: %s only in baseline (not gated)\n", name)
		}
	}
	for name := range cur {
		if _, ok := base[name]; !ok {
			fmt.Fprintf(stdout, "note: %s only in current (not gated)\n", name)
		}
	}

	if geomean > threshold {
		worst := rows[0]
		msg := fmt.Sprintf("geomean ratio %.3f exceeds threshold %.3f — perf regression; worst offender: %s (%.3f× baseline)",
			geomean, threshold, worst.name, worst.ratio)
		if stage, ratio, ok := worstStage(rows); ok {
			msg += fmt.Sprintf("; regressed stage: %s (%.3f× baseline)", stage, ratio)
		}
		return fmt.Errorf("%s", msg)
	}
	fmt.Fprintln(stdout, "benchgate: PASS")
	return nil
}

// benchRow is one shared benchmark's baseline/current medians.
type benchRow struct {
	name      string
	base, cur float64
	ratio     float64
}

// stageBreakdownPrefix marks the per-stage sub-benchmarks emitted from the
// pipeline's trace aggregates (BenchmarkStageBreakdown/binarize and
// friends). When these are in the key set, a tripped gate can name the
// pipeline stage whose median moved instead of leaving CI at "something got
// slower".
const stageBreakdownPrefix = "BenchmarkStageBreakdown/"

// worstStage returns the most-regressed per-stage sub-benchmark, if the
// compared files carry any.
func worstStage(rows []benchRow) (stage string, ratio float64, ok bool) {
	for _, r := range rows { // rows are sorted worst-first
		if strings.HasPrefix(r.name, stageBreakdownPrefix) {
			return strings.TrimPrefix(r.name, stageBreakdownPrefix), r.ratio, true
		}
	}
	return "", 0, false
}

// loadBench parses a `go test -bench` output file into name → ns/op samples.
// Benchmark lines look like:
//
//	BenchmarkName/sub=1-8   	       5	 123456 ns/op	 2048 B/op	 12 allocs/op
//
// The trailing -N GOMAXPROCS suffix is stripped so runs from machines with
// different core counts still share names.
func loadBench(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string][]float64)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		name, nsop, ok := parseBenchLine(sc.Text())
		if ok {
			out[name] = append(out[name], nsop)
		}
	}
	return out, sc.Err()
}

// parseBenchLine extracts (name, ns/op) from one benchmark result line.
func parseBenchLine(line string) (string, float64, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", 0, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", 0, false
	}
	// fields: name, iterations, value, unit, [more pairs...]
	// A zero-iteration line (a benchmark that failed or was skipped before
	// its first iteration) carries no measurement; feeding its ns/op into a
	// median would poison the gate, so drop it here.
	if iters, err := strconv.ParseInt(fields[1], 10, 64); err != nil || iters <= 0 {
		return "", 0, false
	}
	var nsop float64
	found := false
	for i := 2; i+1 < len(fields); i += 2 {
		if fields[i+1] == "ns/op" {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return "", 0, false
			}
			nsop, found = v, true
			break
		}
	}
	if !found {
		return "", 0, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix (the part after the last '-' when it is
	// all digits).
	if i := strings.LastIndex(name, "-"); i > 0 {
		digits := name[i+1:]
		if digits != "" && strings.Trim(digits, "0123456789") == "" {
			name = name[:i]
		}
	}
	return name, nsop, true
}

// median returns the middle sample (mean of the two middles for even n).
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
