// Command signdb builds, inspects and verifies the sign reference database
// — the "database of strings" of §IV as a deployable artefact:
//
//	go run ./cmd/signdb -build refs.json        # render + save references
//	go run ./cmd/signdb -inspect refs.json      # list entries and words
//	go run ./cmd/signdb -verify refs.json       # load and self-classify
package main

import (
	"flag"
	"fmt"
	"os"

	"hdc/internal/body"
	"hdc/internal/recognizer"
	"hdc/internal/scene"
)

func main() {
	build := flag.String("build", "", "render references and save to this file")
	inspect := flag.String("inspect", "", "print the entries of a saved database")
	verify := flag.String("verify", "", "load a database and self-classify all signs")
	flag.Parse()

	switch {
	case *build != "":
		rec := mustRecognizer(true)
		f, err := os.Create(*build)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := rec.SaveReferences(f); err != nil {
			fail(err)
		}
		fmt.Printf("saved %d reference entries to %s\n", rec.Database().Len(), *build)

	case *inspect != "":
		rec := loadInto(*inspect)
		db := rec.Database()
		fmt.Printf("database: %d entries, word length %d, alphabet %d, series length %d\n",
			db.Len(), rec.Config().Segments, rec.Config().Alphabet, rec.Config().SignatureLen)
		for _, e := range db.Entries() {
			fmt.Printf("  %-10s %s\n", e.Label, e.Word.Symbols)
		}
		fmt.Print("shard occupancy (label-hash striping):")
		for i, n := range db.ShardSizes() {
			if i%8 == 0 {
				fmt.Print("\n  ")
			}
			fmt.Printf("%3d ", n)
		}
		fmt.Println()

	case *verify != "":
		rec := loadInto(*verify)
		rend := scene.NewRenderer(scene.Config{})
		ok := true
		for _, s := range body.AllSigns() {
			res, err := rec.RecognizeView(rend, s, scene.ReferenceView(), body.Options{}, nil)
			status := "FAIL"
			if err == nil && res.OK && res.Sign == s {
				status = "ok"
			} else {
				ok = false
			}
			rival := ""
			if res.RunnerUp.Label != "" {
				rival = fmt.Sprintf(" (runner-up %s dist=%.2f)", res.RunnerUp.Label, res.RunnerUp.Dist)
			}
			fmt.Printf("  %-10s → %-10s dist=%.2f conf=%.2f%s  [%s]\n",
				s, res.Match.Label, res.Match.Dist, res.Confidence, rival, status)
		}
		if !ok {
			fail(fmt.Errorf("verification failed"))
		}
		fmt.Println("database verifies: all signs self-classify")

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func mustRecognizer(buildRefs bool) *recognizer.Recognizer {
	rec, err := recognizer.New(recognizer.Config{})
	if err != nil {
		fail(err)
	}
	if buildRefs {
		rend := scene.NewRenderer(scene.Config{})
		if err := rec.BuildReferences(rend, scene.ReferenceView()); err != nil {
			fail(err)
		}
	}
	return rec
}

func loadInto(path string) *recognizer.Recognizer {
	rec := mustRecognizer(false)
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	if err := rec.LoadReferences(f); err != nil {
		fail(err)
	}
	return rec
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "signdb:", err)
	os.Exit(1)
}
