// Command signdb builds, inspects and verifies the sign reference database
// — the "database of strings" of §IV as a deployable artefact. It handles
// both forms of the artefact: the version-1 JSON file and the segmented
// on-disk store directory (internal/sax/store). -inspect and -verify accept
// either and dispatch on what they find.
//
//	go run ./cmd/signdb -build refs.json             # render + save references
//	go run ./cmd/signdb -inspect refs.json           # list entries and words
//	go run ./cmd/signdb -verify refs.json            # load and self-classify
//	go run ./cmd/signdb -convert refs.json -o s.dir  # JSON → mmap store directory
//	go run ./cmd/signdb -inspect s.dir               # segments, WAL, prune index
//	go run ./cmd/signdb -stats s.dir                 # machine-readable store stats
//	go run ./cmd/signdb -compact s.dir -full         # fold WAL + merge segments
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hdc/internal/body"
	"hdc/internal/recognizer"
	"hdc/internal/scene"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main: parse flags, dispatch, report. Exit
// codes: 0 ok, 1 operation failed, 2 usage error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("signdb", flag.ContinueOnError)
	fs.SetOutput(stderr)
	build := fs.String("build", "", "render references and save to this file")
	inspect := fs.String("inspect", "", "print the entries of a saved database (file or store directory)")
	verify := fs.String("verify", "", "load a database (file or store directory) and self-classify all signs")
	convert := fs.String("convert", "", "convert a saved v1 JSON database to a store directory (requires -o)")
	out := fs.String("o", "", "output store directory for -convert")
	compact := fs.String("compact", "", "fold a store directory's WAL into sealed segments")
	full := fs.Bool("full", false, "with -compact: also merge all sealed segments into one")
	stats := fs.String("stats", "", "print a store directory's stats as JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var err error
	switch {
	case *build != "":
		err = runBuild(*build, stdout)
	case *convert != "":
		if *out == "" {
			fmt.Fprintln(stderr, "signdb: -convert requires -o <dir>")
			return 2
		}
		err = runConvert(*convert, *out, stdout)
	case *compact != "":
		err = runCompact(*compact, *full, stdout)
	case *stats != "":
		err = runStats(*stats, stdout)
	case *inspect != "":
		if isStoreDir(*inspect) {
			err = runInspectStore(*inspect, stdout)
		} else {
			err = runInspect(*inspect, stdout)
		}
	case *verify != "":
		if isStoreDir(*verify) {
			err = runVerifyStore(*verify, stdout)
		} else {
			err = runVerify(*verify, stdout)
		}
	default:
		fs.Usage()
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "signdb:", err)
		return 1
	}
	return 0
}

// runBuild renders the built-in references and saves them.
func runBuild(path string, stdout io.Writer) error {
	rec, err := newRecognizer(true)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := rec.SaveReferences(f); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "saved %d reference entries to %s\n", rec.Database().Len(), path)
	return nil
}

// runInspect lists a saved database's entries and shard occupancy.
func runInspect(path string, stdout io.Writer) error {
	rec, err := loadInto(path)
	if err != nil {
		return err
	}
	db := rec.Database()
	fmt.Fprintf(stdout, "database: %d entries, word length %d, alphabet %d, series length %d\n",
		db.Len(), rec.Config().Segments, rec.Config().Alphabet, rec.Config().SignatureLen)
	for _, e := range db.Entries() {
		fmt.Fprintf(stdout, "  %-10s %s\n", e.Label, e.Word.Symbols)
	}
	fmt.Fprint(stdout, "shard occupancy (label-hash striping):")
	for i, n := range db.ShardSizes() {
		if i%8 == 0 {
			fmt.Fprint(stdout, "\n  ")
		}
		fmt.Fprintf(stdout, "%3d ", n)
	}
	fmt.Fprintln(stdout)
	return nil
}

// runVerify loads a database and checks every sign self-classifies.
func runVerify(path string, stdout io.Writer) error {
	rec, err := loadInto(path)
	if err != nil {
		return err
	}
	return selfClassify(rec, stdout)
}

// selfClassify renders every sign at the reference view and checks it
// classifies as itself through rec's active dictionary.
func selfClassify(rec *recognizer.Recognizer, stdout io.Writer) error {
	rend := scene.NewRenderer(scene.Config{})
	ok := true
	for _, s := range body.AllSigns() {
		res, err := rec.RecognizeView(rend, s, scene.ReferenceView(), body.Options{}, nil)
		status := "FAIL"
		if err == nil && res.OK && res.Sign == s {
			status = "ok"
		} else {
			ok = false
		}
		rival := ""
		if res.RunnerUp.Label != "" {
			rival = fmt.Sprintf(" (runner-up %s dist=%.2f)", res.RunnerUp.Label, res.RunnerUp.Dist)
		}
		fmt.Fprintf(stdout, "  %-10s → %-10s dist=%.2f conf=%.2f%s  [%s]\n",
			s, res.Match.Label, res.Match.Dist, res.Confidence, rival, status)
	}
	if !ok {
		return fmt.Errorf("verification failed")
	}
	fmt.Fprintln(stdout, "database verifies: all signs self-classify")
	return nil
}

// newRecognizer builds the calibrated recogniser, optionally with the
// built-in rendered references.
func newRecognizer(buildRefs bool) (*recognizer.Recognizer, error) {
	rec, err := recognizer.New(recognizer.Config{})
	if err != nil {
		return nil, err
	}
	if buildRefs {
		rend := scene.NewRenderer(scene.Config{})
		if err := rec.BuildReferences(rend, scene.ReferenceView()); err != nil {
			return nil, err
		}
	}
	return rec, nil
}

// loadInto loads a saved database into a fresh recogniser.
func loadInto(path string) (*recognizer.Recognizer, error) {
	rec, err := newRecognizer(false)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := rec.LoadReferences(f); err != nil {
		return nil, err
	}
	return rec, nil
}
