package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"hdc/internal/sax/store"
)

// store.go is signdb's store-directory half: converting the v1 JSON artefact
// into the segmented mmap format, and compacting/inspecting/verifying store
// directories in place.

// isStoreDir reports whether path is a store directory (has a manifest).
func isStoreDir(path string) bool {
	_, err := os.Stat(filepath.Join(path, "MANIFEST.json"))
	return err == nil
}

// runConvert streams a v1 JSON database into a fresh store directory.
func runConvert(in, dir string, stdout io.Writer) error {
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	n, err := store.ConvertV1(f, dir, store.BuilderOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "converted %d entries from %s into store %s\n", n, in, dir)
	return nil
}

// runCompact folds the WAL tail into sealed segments (with -full, also
// merges every sealed segment into one).
func runCompact(dir string, full bool, stdout io.Writer) error {
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		return err
	}
	defer st.Close()
	before := st.Stats()
	if full {
		err = st.CompactFull()
	} else {
		err = st.Compact()
	}
	if err != nil {
		return err
	}
	after := st.Stats()
	fmt.Fprintf(stdout, "compacted %s: %d tail entries folded, %d → %d segments, wal %d → %d bytes\n",
		dir, before.Tail, len(before.Segments), len(after.Segments), before.WALBytes, after.WALBytes)
	return nil
}

// runStats prints the store's stats as indented JSON (the same shape the
// server reports under /statsz "store").
func runStats(dir string, stdout io.Writer) error {
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		return err
	}
	defer st.Close()
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(st.Stats())
}

// runInspectStore prints a store directory's physical layout: per-segment
// occupancy, the WAL backlog, and how much of the dictionary the mapped
// prune index covers (tail entries keep their histograms on the heap, so
// coverage below 1.0 means a compaction is due).
func runInspectStore(dir string, stdout io.Writer) error {
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		return err
	}
	defer st.Close()
	if err := st.CheckIntegrity(); err != nil {
		return err
	}
	s := st.Stats()
	enc := st.Encoder()
	fmt.Fprintf(stdout, "store: %d entries, word length %d, alphabet %d, series length %d\n",
		s.Entries, enc.Segments(), enc.AlphabetSize(), st.SeriesLen())
	fmt.Fprintf(stdout, "segments (%d, integrity ok):\n", len(s.Segments))
	for _, sg := range s.Segments {
		fmt.Fprintf(stdout, "  %-14s %8d entries  %4d labels  seq %8d+  %10d bytes\n",
			sg.File, sg.Entries, sg.Labels, sg.BaseSeq, sg.Bytes)
	}
	fmt.Fprintf(stdout, "wal: %d entries pending, %d bytes\n", s.Tail, s.WALBytes)
	coverage := 1.0
	if s.Entries > 0 {
		coverage = float64(s.Sealed) / float64(s.Entries)
	}
	fmt.Fprintf(stdout, "prune index: %.1f%% of entries served from mapped segments\n", 100*coverage)
	if s.LastCompactErr != "" {
		fmt.Fprintf(stdout, "last compaction error: %s\n", s.LastCompactErr)
	}
	fmt.Fprintf(stdout, "disk: %d bytes in %s\n", s.DiskBytes, dir)
	return nil
}

// runVerifyStore self-classifies every sign through a store-backed
// recogniser — the same check runVerify does for JSON files.
func runVerifyStore(dir string, stdout io.Writer) error {
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		return err
	}
	defer st.Close()
	if err := st.CheckIntegrity(); err != nil {
		return err
	}
	rec, err := newRecognizer(false)
	if err != nil {
		return err
	}
	if err := rec.UseDictionary(st); err != nil {
		return err
	}
	return selfClassify(rec, stdout)
}
