package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestBuildInspectVerifyRoundTrip drives the full binary surface through the
// extracted run(): build a dictionary, inspect it, verify it.
func TestBuildInspectVerifyRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "refs.json")
	var out, errOut bytes.Buffer

	if code := run([]string{"-build", path}, &out, &errOut); code != 0 {
		t.Fatalf("build exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "saved") {
		t.Fatalf("build output: %q", out.String())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("dictionary not written: %v", err)
	}

	out.Reset()
	if code := run([]string{"-inspect", path}, &out, &errOut); code != 0 {
		t.Fatalf("inspect exit %d: %s", code, errOut.String())
	}
	for _, want := range []string{"database:", "shard occupancy", "Attention", "Yes", "No"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("inspect output missing %q:\n%s", want, out.String())
		}
	}

	out.Reset()
	if code := run([]string{"-verify", path}, &out, &errOut); code != 0 {
		t.Fatalf("verify exit %d: %s\n%s", code, errOut.String(), out.String())
	}
	if !strings.Contains(out.String(), "all signs self-classify") {
		t.Fatalf("verify output: %q", out.String())
	}
}

// TestErrorExits pins the failure taxonomy: usage errors exit 2, operation
// failures exit 1 with a diagnostic on stderr.
func TestErrorExits(t *testing.T) {
	var out, errOut bytes.Buffer

	// No mode selected → usage, exit 2.
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("no-args exit %d, want 2", code)
	}
	// Unknown flag → parse error, exit 2.
	if code := run([]string{"-bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("bad flag exit %d, want 2", code)
	}
	// Missing dictionary → operation failure, exit 1.
	errOut.Reset()
	if code := run([]string{"-inspect", filepath.Join(t.TempDir(), "missing.json")}, &out, &errOut); code != 1 {
		t.Fatalf("missing file exit %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "signdb:") {
		t.Fatalf("stderr: %q", errOut.String())
	}
	// Corrupt dictionary → load failure, exit 1.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not a database"), 0o644); err != nil {
		t.Fatal(err)
	}
	errOut.Reset()
	if code := run([]string{"-verify", bad}, &out, &errOut); code != 1 {
		t.Fatalf("corrupt file exit %d, want 1", code)
	}
}

// TestStoreLifecycle drives the store-directory surface end to end: build a
// JSON dictionary, convert it, inspect/stats/verify the directory, and
// compact it (a no-op fold that must still succeed and report).
func TestStoreLifecycle(t *testing.T) {
	tmp := t.TempDir()
	path := filepath.Join(tmp, "refs.json")
	dir := filepath.Join(tmp, "signs.store")
	var out, errOut bytes.Buffer

	if code := run([]string{"-build", path}, &out, &errOut); code != 0 {
		t.Fatalf("build exit %d: %s", code, errOut.String())
	}

	out.Reset()
	if code := run([]string{"-convert", path, "-o", dir}, &out, &errOut); code != 0 {
		t.Fatalf("convert exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "converted 9 entries") {
		t.Fatalf("convert output: %q", out.String())
	}

	out.Reset()
	if code := run([]string{"-inspect", dir}, &out, &errOut); code != 0 {
		t.Fatalf("store inspect exit %d: %s", code, errOut.String())
	}
	for _, want := range []string{"store: 9 entries", "integrity ok", "seg-000001.seg", "prune index: 100.0%", "wal: 0 entries"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("store inspect missing %q:\n%s", want, out.String())
		}
	}

	out.Reset()
	if code := run([]string{"-stats", dir}, &out, &errOut); code != 0 {
		t.Fatalf("stats exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), `"entries": 9`) {
		t.Fatalf("stats output: %q", out.String())
	}

	out.Reset()
	if code := run([]string{"-verify", dir}, &out, &errOut); code != 0 {
		t.Fatalf("store verify exit %d: %s\n%s", code, errOut.String(), out.String())
	}
	if !strings.Contains(out.String(), "all signs self-classify") {
		t.Fatalf("store verify output: %q", out.String())
	}

	out.Reset()
	if code := run([]string{"-compact", dir, "-full"}, &out, &errOut); code != 0 {
		t.Fatalf("compact exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "compacted") {
		t.Fatalf("compact output: %q", out.String())
	}

	// Converting onto an existing store must fail cleanly, and -convert
	// without -o is a usage error.
	if code := run([]string{"-convert", path, "-o", dir}, &out, &errOut); code != 1 {
		t.Fatalf("re-convert exit %d, want 1", code)
	}
	if code := run([]string{"-convert", path}, &out, &errOut); code != 2 {
		t.Fatalf("convert without -o exit %d, want 2", code)
	}
}
