package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"hdc/internal/server"
	"hdc/internal/server/client"
	"hdc/internal/server/loadtest"
)

// loadgen.go is the measured E19 experiment as an operator tool: N synthetic
// operators hammer one recognition service with batch and/or stream traffic
// (internal/server/loadtest is the shared driver — the E19 generator uses
// the same one) and the report adds the server's own occupancy/allocation
// counters from /statsz.

type loadgenConfig struct {
	operators int
	duration  time.Duration
	batch     int
	mix       string // batch | stream | mixed
	wire      string // raw | json
	target    string // empty = in-process server
	workers   int    // in-process pool size (0 = NumCPU)
}

// runLoadgen executes the experiment and prints the report.
func runLoadgen(cfg loadgenConfig, stdout, stderr io.Writer) error {
	ltCfg := loadtest.Config{
		Operators: cfg.operators,
		Batch:     cfg.batch,
		Duration:  cfg.duration,
		Mix:       cfg.mix,
		Wire:      cfg.wire,
	}
	if err := ltCfg.Validate(); err != nil {
		return err
	}

	base := cfg.target
	if base == "" {
		sys, srv, _, err := buildService(cfg.workers, 0, 0, 0, "", "", 2*time.Minute, 1024, false, 0, false)
		if err != nil {
			return err
		}
		ln, err := newListener("127.0.0.1:0")
		if err != nil {
			return err
		}
		httpSrv := &http.Server{Handler: srv}
		go func() { _ = httpSrv.Serve(ln) }()
		defer func() {
			_ = httpSrv.Close()
			srv.Close()
			sys.Close()
		}()
		base = "http://" + ln.Addr().String()
	}

	frames, err := loadtest.RenderFrames(ltCfg.Batch)
	if err != nil {
		return err
	}

	probe := client.New(base, nil)
	ctx := context.Background()
	if err := probe.Healthz(ctx); err != nil {
		return fmt.Errorf("loadgen: target %s not healthy: %w", base, err)
	}
	statsBefore, err := probe.Statsz(ctx)
	if err != nil {
		return fmt.Errorf("loadgen: statsz: %w", err)
	}

	res, err := loadtest.Drive(ctx, base, ltCfg, frames)
	if err != nil {
		return err
	}

	statsAfter, err := probe.Statsz(ctx)
	if err != nil {
		return fmt.Errorf("loadgen: statsz: %w", err)
	}
	report(stdout, ltCfg, base, &res, statsBefore, statsAfter)
	return nil
}

// report prints the E19 summary.
func report(w io.Writer, cfg loadtest.Config, base string, res *loadtest.Result, before, after server.StatsResponse) {
	fmt.Fprintf(w, "hdcserve loadgen: %d operators, mix=%s, wire=%s, batch=%d, %v against %s\n",
		cfg.Operators, cfg.Mix, cfg.Wire, cfg.Batch, cfg.Duration, base)
	fmt.Fprintf(w, "  frames:     %d (%.1f frames/s)\n", res.Frames, res.FramesPerSec())
	fmt.Fprintf(w, "  requests:   %d (%.1f req/s), %d failures\n", res.Requests, res.ReqPerSec(), res.Failures)
	fmt.Fprintf(w, "  latency:    p50=%.1fms p95=%.1fms p99=%.1fms max=%.1fms\n",
		res.PercentileMS(0.50), res.PercentileMS(0.95), res.PercentileMS(0.99), res.PercentileMS(1.0))
	fmt.Fprintf(w, "  pool:       workers=%d queue=%d/%d streams=%d\n",
		after.Pool.Workers, after.Pool.QueueLen, after.Pool.QueueCap, after.Pool.Streams)
	if d := after.Mem.TotalAllocBytes - before.Mem.TotalAllocBytes; res.Frames > 0 {
		fmt.Fprintf(w, "  allocation: %.1f KB/frame server-side (TotalAlloc delta)\n",
			float64(d)/1024/float64(res.Frames))
	}
	for _, ep := range []string{"batch", "stream_frames"} {
		b, a := before.Endpoints[ep], after.Endpoints[ep]
		if a.Count > b.Count {
			fmt.Fprintf(w, "  server %-13s count=%d p50=%.1fms p99=%.1fms\n",
				ep+":", a.Count-b.Count, a.P50MS, a.P99MS)
		}
	}
}

// newListener opens the TCP listener for serve and the in-process loadgen.
func newListener(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}
