package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"hdc/internal/failpoint"
	"hdc/internal/raster"
	"hdc/internal/server/client"
)

// TestLoadgenSmoke runs a miniature in-process load generation end to end:
// server up, operators driven, report printed.
func TestLoadgenSmoke(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{
		"-loadgen", "-operators", "2", "-duration", "300ms", "-batch", "2", "-workers", "1",
	}, &out, &errOut, nil)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	s := out.String()
	for _, want := range []string{"hdcserve loadgen: 2 operators", "frames:", "latency:", "pool:"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "failures") && !strings.Contains(s, " 0 failures") {
		t.Errorf("loadgen reported failures:\n%s", s)
	}
}

// TestServeAndDrain boots the real serving path on an ephemeral port, checks
// health, then drains it with SIGTERM — the production shutdown sequence.
func TestServeAndDrain(t *testing.T) {
	var out, errOut bytes.Buffer
	ready := make(chan string, 1)
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "1"}, &out, &errOut, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(30 * time.Second):
		t.Fatal("server never became ready")
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	// The signal handler is installed by serve; the test process delivers
	// SIGTERM to itself and run() must drain and exit 0.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit %d: %s", code, errOut.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("drain never completed")
	}
	if !strings.Contains(out.String(), "drained") {
		t.Fatalf("drain log: %q", out.String())
	}
}

// TestUsageAndValidation pins the exit taxonomy.
func TestUsageAndValidation(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-bogus"}, &out, &errOut, nil); code != 2 {
		t.Fatalf("bad flag exit %d, want 2", code)
	}
	if code := run([]string{"positional"}, &out, &errOut, nil); code != 2 {
		t.Fatalf("positional arg exit %d, want 2", code)
	}
	if code := run([]string{"-loadgen", "-mix", "sideways"}, &out, &errOut, nil); code != 1 {
		t.Fatalf("bad mix exit %d, want 1", code)
	}
	if code := run([]string{"-loadgen", "-wire", "carrier-pigeon"}, &out, &errOut, nil); code != 1 {
		t.Fatalf("bad wire exit %d, want 1", code)
	}
	// A dictionary that does not exist fails cleanly at startup.
	errOut.Reset()
	if code := run([]string{"-dict", "/nonexistent/refs.json"}, &out, &errOut, nil); code != 1 {
		t.Fatalf("missing dict exit %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "hdcserve:") {
		t.Fatalf("stderr: %q", errOut.String())
	}
}

// TestServeStoreMode boots -store twice against one directory: the first run
// creates and seeds it with the rendered references, the second opens the
// sealed store. Both must serve, report the store on /statsz, and drain.
func TestServeStoreMode(t *testing.T) {
	dir := t.TempDir() + "/signs.store"
	var entries int
	for pass, name := range []string{"create+seed", "reopen"} {
		var out, errOut bytes.Buffer
		ready := make(chan string, 1)
		done := make(chan int, 1)
		go func() {
			done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "1", "-store", dir}, &out, &errOut, ready)
		}()
		var addr string
		select {
		case addr = <-ready:
		case <-time.After(30 * time.Second):
			t.Fatalf("%s: server never became ready: %s", name, errOut.String())
		}

		resp, err := http.Get("http://" + addr + "/statsz")
		if err != nil {
			t.Fatal(err)
		}
		var stats struct {
			Store *struct {
				Entries int `json:"entries"`
			} `json:"store"`
		}
		err = json.NewDecoder(resp.Body).Decode(&stats)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if stats.Store == nil || stats.Store.Entries == 0 {
			t.Fatalf("%s: statsz store snapshot missing or empty: %+v", name, stats.Store)
		}
		if pass == 0 {
			entries = stats.Store.Entries
		} else if stats.Store.Entries != entries {
			t.Fatalf("reopen entries %d, want %d", stats.Store.Entries, entries)
		}

		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case code := <-done:
			if code != 0 {
				t.Fatalf("%s: exit %d: %s", name, code, errOut.String())
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("%s: drain never completed", name)
		}
	}

	// -dict and -store together are a usage error.
	var out, errOut bytes.Buffer
	if code := run([]string{"-dict", "x.json", "-store", dir}, &out, &errOut, nil); code != 2 {
		t.Fatalf("-dict+-store exit %d, want 2", code)
	}
}

// TestServeDrainWithOpenSessions is the hard drain case: SIGTERM lands
// while a recognition stream has a frames request in flight (workers
// slowed by a failpoint) and a live gesture session sits open. The drain
// must still complete: the in-flight request finishes (its tail may answer
// "draining"), the sessions end, and run exits 0.
func TestServeDrainWithOpenSessions(t *testing.T) {
	defer failpoint.DisableAll()
	var out, errOut bytes.Buffer
	ready := make(chan string, 1)
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "1", "-queue", "1", "-window", "2"}, &out, &errOut, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(30 * time.Second):
		t.Fatalf("server never became ready: %s", errOut.String())
	}

	c := client.New("http://"+addr, nil)
	ctx := context.Background()
	st, err := c.OpenStream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	gst, err := c.OpenGestureStream(ctx)
	if err != nil {
		t.Fatal(err)
	}

	frames := make([]*raster.Gray, 8)
	for i := range frames {
		frames[i], err = raster.NewGray(64, 64)
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := gst.Offer(ctx, frames[:2]...); err != nil {
		t.Fatal(err)
	}

	// Slow the single worker so the stream request is still in flight when
	// the signal lands.
	if err := failpoint.Enable(failpoint.PipelineWorker, "delay(50ms)"); err != nil {
		t.Fatal(err)
	}
	submitDone := make(chan error, 1)
	go func() {
		_, err := st.Submit(ctx, frames...)
		submitDone <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the request reach the pool

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit %d: %s", code, errOut.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("drain never completed with open sessions")
	}
	// The in-flight request must have been answered, not abandoned: either
	// full results or a transport/draining error, but never a hang.
	select {
	case <-submitDone:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight stream request never returned")
	}
	if !strings.Contains(out.String(), "drained") {
		t.Fatalf("drain log: %q", out.String())
	}
}
