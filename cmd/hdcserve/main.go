// Command hdcserve runs the networked recognition service: one shared
// core.System worker pool behind the internal/server HTTP API, serving
// many concurrent operators (see DESIGN.md §"The service layer").
//
//	hdcserve -addr :8080 -workers 8                 # serve
//	hdcserve -dict refs.json                        # serve a shipped dictionary
//	hdcserve -store signs.store                     # serve a mapped on-disk store (seeded if absent)
//	hdcserve -gesture=false                         # static signs only
//	hdcserve -gesture-buffer 96                     # deeper live-feed ingest ring
//	hdcserve -loadgen -operators 16 -duration 5s    # measured E19 experiment
//	hdcserve -failpoints 'store/wal-append=error(enospc)'  # chaos drill (or HDC_FAILPOINTS)
//	hdcserve -failpointz                            # mount the debug /failpointz endpoint
//
// The gesture endpoints (POST /v1/gesture, /v1/gesture/streams live
// sessions with ring-buffer ingest) are served by default; live sessions
// shed oldest frames instead of stalling when offered load exceeds the
// pool, with drop totals on /statsz.
//
// Serving mode drains gracefully on SIGINT/SIGTERM: /healthz flips to 503,
// in-flight requests finish, stream sessions end, then the pool stops.
// Loadgen mode drives N synthetic operators (batch and stream traffic) at
// the service and reports sustained throughput and request-latency
// percentiles.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"hdc/internal/core"
	"hdc/internal/failpoint"
	"hdc/internal/gesture"
	"hdc/internal/pipeline"
	"hdc/internal/recognizer"
	"hdc/internal/sax/store"
	"hdc/internal/scene"
	"hdc/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is the testable body of main. ready, when non-nil, receives the bound
// listen address once the server accepts connections (used by tests and by
// the loadgen's in-process mode).
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("hdcserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		workers  = fs.Int("workers", 0, "recognition worker pool size (0 = NumCPU)")
		queue    = fs.Int("queue", 0, "shared frame queue depth (0 = 2×workers)")
		window   = fs.Int("window", 0, "per-stream in-flight frame bound (0 = 2×workers)")
		traceBuf = fs.Int("trace-buffer", 0, "per-worker frame-trace ring capacity served on /tracez (0 = default, rounded up to a power of two)")
		dict     = fs.String("dict", "", "load a reference dictionary file (default: render the built-in references)")
		storeDir = fs.String("store", "", "serve from a segmented on-disk store directory (created and seeded with the built-in references if absent; see signdb -convert)")
		idle     = fs.Duration("idle-timeout", 2*time.Minute, "reap stream sessions idle this long")
		maxBatch = fs.Int("max-batch", 256, "largest accepted batch / stream-frames request")
		gest     = fs.Bool("gesture", true, "serve the dynamic-gesture endpoints (/v1/gesture + live ring-buffer sessions)")
		gestBuf  = fs.Int("gesture-buffer", 0, "live gesture ingest ring capacity in frames (0 = two observation windows)")
		fps      = fs.String("failpoints", "", "arm fault-injection points: name=spec[,name=spec...] (also read from HDC_FAILPOINTS; 'off' disarms)")
		fpz      = fs.Bool("failpointz", false, "mount the debug /failpointz endpoint (list/arm/disarm failpoints at runtime)")

		loadgen   = fs.Bool("loadgen", false, "drive synthetic load instead of serving (the E19 experiment)")
		operators = fs.Int("operators", 8, "loadgen: concurrent synthetic operators")
		duration  = fs.Duration("duration", 5*time.Second, "loadgen: run length")
		batch     = fs.Int("batch", 8, "loadgen: frames per request")
		mix       = fs.String("mix", "mixed", "loadgen: traffic mix: batch | stream | mixed")
		wire      = fs.String("wire", "raw", "loadgen: frame encoding: raw | json")
		target    = fs.String("target", "", "loadgen: target base URL (default: an in-process server)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "hdcserve: unexpected arguments: %v\n", fs.Args())
		return 2
	}

	// Failpoints arm process-wide before anything else starts, so a chaos
	// drill covers the store open and pool start too. The flag wins over the
	// environment.
	fpSpec := *fps
	if fpSpec == "" {
		fpSpec = os.Getenv("HDC_FAILPOINTS")
	}
	if fpSpec != "" {
		if err := failpoint.Configure(fpSpec); err != nil {
			fmt.Fprintln(stderr, "hdcserve:", err)
			return 2
		}
	}

	if *loadgen {
		cfg := loadgenConfig{
			operators: *operators,
			duration:  *duration,
			batch:     *batch,
			mix:       *mix,
			wire:      *wire,
			target:    *target,
			workers:   *workers,
		}
		if err := runLoadgen(cfg, stdout, stderr); err != nil {
			fmt.Fprintln(stderr, "hdcserve:", err)
			return 1
		}
		return 0
	}

	if *dict != "" && *storeDir != "" {
		fmt.Fprintln(stderr, "hdcserve: -dict and -store are mutually exclusive")
		return 2
	}
	sys, srv, st, err := buildService(*workers, *queue, *window, *traceBuf, *dict, *storeDir, *idle, *maxBatch, *gest, *gestBuf, *fpz)
	if err != nil {
		fmt.Fprintln(stderr, "hdcserve:", err)
		return 1
	}
	if err := serve(*addr, sys, srv, st, stdout, ready); err != nil {
		fmt.Fprintln(stderr, "hdcserve:", err)
		return 1
	}
	return 0
}

// buildService assembles the system and the HTTP service over it. The
// returned store is non-nil only in -store mode; the caller closes it after
// the system drains.
func buildService(workers, queue, window, traceBuf int, dict, storeDir string, idle time.Duration,
	maxBatch int, gest bool, gestBuf int, debugFailpoints bool) (*core.System, *server.Server, *store.Store, error) {
	sys, err := core.NewSystem(
		core.WithSceneConfig(scene.Config{}),
		core.WithPipelineConfig(pipeline.Config{
			Workers: workers, QueueDepth: queue, StreamWindow: window,
			TraceBuffer: traceBuf,
		}),
		core.WithPoolLabel("hdcserve"),
	)
	if err != nil {
		return nil, nil, nil, err
	}
	if dict != "" {
		if err := loadDictionary(sys.Rec, dict); err != nil {
			return nil, nil, nil, err
		}
	}
	var st *store.Store
	if storeDir != "" {
		st, err = openStore(sys.Rec, storeDir)
		if err != nil {
			return nil, nil, nil, err
		}
		if err := sys.Rec.UseDictionary(st); err != nil {
			st.Close()
			return nil, nil, nil, fmt.Errorf("store %s: %w", storeDir, err)
		}
	}
	opts := server.Options{
		MaxBatch:          maxBatch,
		StreamIdleTimeout: idle,
		GestureBuffer:     gestBuf,
		Store:             st,
		DebugFailpoints:   debugFailpoints,
	}
	if gest {
		rec, err := gesture.NewRecognizer(gesture.Config{}, sys.Rend, scene.ReferenceView())
		if err != nil {
			if st != nil {
				st.Close()
			}
			return nil, nil, nil, fmt.Errorf("gesture templates: %w", err)
		}
		opts.Gesture = rec
	}
	srv := server.New(sys, opts)
	return sys, srv, st, nil
}

// openStore opens (or, for a fresh directory, creates and seeds) the on-disk
// dictionary. Seeding converts the system's freshly rendered references via
// the same streaming path `signdb -convert` uses, so a first `-store` run
// serves exactly what the default in-memory mode would.
func openStore(rec *recognizer.Recognizer, dir string) (*store.Store, error) {
	if _, err := os.Stat(filepath.Join(dir, "MANIFEST.json")); err == nil {
		st, err := store.Open(dir, store.Options{})
		if err != nil {
			return nil, fmt.Errorf("store %s: %w", dir, err)
		}
		return st, nil
	}
	var buf bytes.Buffer
	if err := rec.SaveReferences(&buf); err != nil {
		return nil, fmt.Errorf("store %s: seed: %w", dir, err)
	}
	if _, err := store.ConvertV1(&buf, dir, store.BuilderOptions{}); err != nil {
		return nil, fmt.Errorf("store %s: seed: %w", dir, err)
	}
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		return nil, fmt.Errorf("store %s: %w", dir, err)
	}
	return st, nil
}

// loadDictionary replaces the rendered references with a shipped database.
func loadDictionary(rec *recognizer.Recognizer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := rec.LoadReferences(f); err != nil {
		return fmt.Errorf("dictionary %s: %w", path, err)
	}
	return nil
}

// serve listens until SIGINT/SIGTERM, then drains: healthz 503 → in-flight
// requests finish (http.Server.Shutdown) → sessions end → pool stops → the
// store (if any) seals its tail and closes.
func serve(addr string, sys *core.System, srv *server.Server, st *store.Store, stdout io.Writer, ready chan<- string) error {
	httpSrv := &http.Server{Addr: addr, Handler: srv}
	ln, err := newListener(addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "hdcserve: serving on %s (pool: %s)\n", ln.Addr(), poolDesc(sys))
	if ready != nil {
		ready <- ln.Addr().String()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(stdout, "hdcserve: draining")
	srv.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(stdout, "hdcserve: forced shutdown:", err)
	}
	srv.Close()
	sys.Close()
	if st != nil {
		if err := st.Close(); err != nil {
			fmt.Fprintln(stdout, "hdcserve: store close:", err)
		}
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(stdout, "hdcserve: drained")
	return nil
}

// poolDesc summarises the pool for the startup line.
func poolDesc(sys *core.System) string {
	if st, ok := sys.PoolStats(); ok {
		return fmt.Sprintf("%d workers", st.Workers)
	}
	return "lazy start"
}
