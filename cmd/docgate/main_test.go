package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree lays the given files out under a fresh temp dir and returns it.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// gate runs docgate over the tree and returns exit code + output.
func gate(t *testing.T, dir string, args ...string) (int, string) {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(cwd); err != nil {
			t.Fatal(err)
		}
	}()
	var out strings.Builder
	code := run(args, &out, &out)
	return code, out.String()
}

const goodPkg = `// Package good is a fully documented example package whose comment is
// long enough to count as a front door for the gate under test.
package good

// Widget is a documented exported type.
type Widget struct{}

// Spin is a documented exported method.
func (w *Widget) Spin() {}

// New is a documented exported function.
func New() *Widget { return &Widget{} }

type hidden struct{}

func (h hidden) quiet() {}
`

func TestDocgateCleanTreePasses(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"internal/good/good.go": goodPkg,
		"README.md":             "see [design](DESIGN.md) and [web](https://example.com)\n",
		"DESIGN.md":             "back to [readme](README.md#testing)\n",
	})
	code, out := gate(t, dir, "-pkgs", "./internal", "-md", "README.md,DESIGN.md")
	if code != 0 {
		t.Fatalf("clean tree failed (%d):\n%s", code, out)
	}
}

func TestDocgateFindsMissingDocs(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"internal/bare/bare.go": `package bare

type Exposed struct{}

func Run() {}

// misnamed has a comment that does not start with the symbol name.
func Misnamed() {}
`,
	})
	code, out := gate(t, dir, "-pkgs", "./internal", "-md", "")
	if code != 1 {
		t.Fatalf("undocumented tree passed (%d):\n%s", code, out)
	}
	for _, want := range []string{
		"has no package comment",
		"exported type Exposed has no doc comment",
		"exported function Run has no doc comment",
		`should start with "Misnamed"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
}

func TestDocgateFlagsOneLinerPackageComment(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"internal/terse/terse.go": "// Package terse is short.\npackage terse\n",
	})
	code, out := gate(t, dir, "-pkgs", "./internal", "-md", "")
	if code != 1 || !strings.Contains(out, "one-liner") {
		t.Fatalf("one-liner package comment passed (%d):\n%s", code, out)
	}
	// The same tree passes when the bar is lowered.
	if code, out := gate(t, dir, "-pkgs", "./internal", "-md", "", "-min-pkg-comment", "10"); code != 0 {
		t.Fatalf("lowered bar still failed (%d):\n%s", code, out)
	}
}

func TestDocgateFindsBrokenLinks(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"README.md": "a [dead link](MISSING.md), an [anchor](#ok), a [url](https://x.y)\n",
	})
	code, out := gate(t, dir, "-pkgs", "", "-md", "README.md")
	if code != 1 || !strings.Contains(out, `broken relative link "MISSING.md"`) {
		t.Fatalf("broken link passed (%d):\n%s", code, out)
	}
	if strings.Contains(out, "#ok") || strings.Contains(out, "https://x.y") {
		t.Fatalf("anchor or URL wrongly flagged:\n%s", out)
	}
}
