// Command docgate is the repository's documentation gate, run by the CI docs
// job beside staticcheck's ST1000/ST1020/ST1021 checks:
//
//	go run ./cmd/docgate                  # gate ./internal/... + README/DESIGN/EXPERIMENTS links
//	go run ./cmd/docgate -pkgs ./internal -md README.md,DESIGN.md
//
// It fails (exit 1, one finding per line) when any package under the gated
// trees lacks a real package comment, when an exported function, method or
// type misses its doc comment or the comment doesn't start with the symbol's
// name (the godoc convention staticcheck enforces as ST1020/ST1021 — docgate
// duplicates those two so the gate also runs where staticcheck isn't
// installed), or when a relative markdown link points at a file that does not
// exist. URLs with a scheme and pure #fragment links are not checked.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the gate; split from main for testability.
func run(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("docgate", flag.ContinueOnError)
	fl.SetOutput(stderr)
	pkgs := fl.String("pkgs", "./internal,./cmd", "comma-separated package trees to gate")
	md := fl.String("md", "README.md,DESIGN.md,EXPERIMENTS.md",
		"comma-separated markdown files whose relative links must resolve")
	minPkgComment := fl.Int("min-pkg-comment", 40,
		"minimum package-comment length in bytes (a one-liner front door is not a front door)")
	if err := fl.Parse(args); err != nil {
		return 2
	}

	var findings []string
	for _, root := range strings.Split(*pkgs, ",") {
		root = strings.TrimSpace(root)
		if root == "" {
			continue
		}
		fs, err := gatePackages(root, *minPkgComment)
		if err != nil {
			fmt.Fprintf(stderr, "docgate: %v\n", err)
			return 2
		}
		findings = append(findings, fs...)
	}
	for _, file := range strings.Split(*md, ",") {
		file = strings.TrimSpace(file)
		if file == "" {
			continue
		}
		fs, err := gateLinks(file)
		if err != nil {
			fmt.Fprintf(stderr, "docgate: %v\n", err)
			return 2
		}
		findings = append(findings, fs...)
	}

	if len(findings) == 0 {
		fmt.Fprintln(stdout, "docgate: ok")
		return 0
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	fmt.Fprintf(stdout, "docgate: %d finding(s)\n", len(findings))
	return 1
}

// gatePackages walks every Go package directory under root and returns the
// documentation findings.
func gatePackages(root string, minPkgComment int) ([]string, error) {
	var findings []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		files, err := goFiles(path)
		if err != nil || len(files) == 0 {
			return err
		}
		fset := token.NewFileSet()
		var parsed []*ast.File
		pkgName := ""
		for _, file := range files {
			f, err := parser.ParseFile(fset, file, nil, parser.ParseComments)
			if err != nil {
				return fmt.Errorf("%s: %w", file, err)
			}
			parsed = append(parsed, f)
			pkgName = f.Name.Name
		}
		findings = append(findings, gatePackage(fset, path, pkgName, parsed, minPkgComment)...)
		return nil
	})
	return findings, err
}

// goFiles lists dir's non-test Go files (no recursion; WalkDir handles that).
func goFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	return files, nil
}

// gatePackage checks one parsed package: package comment presence/weight and
// exported-symbol doc comments.
func gatePackage(fset *token.FileSet, dir, name string, files []*ast.File, minPkgComment int) []string {
	var findings []string
	var pkgDoc string
	for _, f := range files {
		if f.Doc != nil && len(f.Doc.Text()) > len(pkgDoc) {
			pkgDoc = f.Doc.Text()
		}
	}
	switch {
	case pkgDoc == "":
		findings = append(findings, fmt.Sprintf("%s: package %s has no package comment", dir, name))
	case len(pkgDoc) < minPkgComment:
		findings = append(findings, fmt.Sprintf(
			"%s: package %s package comment is %d bytes — a one-liner, not a front door (< %d)",
			dir, name, len(pkgDoc), minPkgComment))
	}

	for _, f := range files {
		for _, decl := range f.Decls {
			findings = append(findings, gateDecl(fset, decl)...)
		}
	}
	return findings
}

// gateDecl checks one top-level declaration's doc comment.
func gateDecl(fset *token.FileSet, decl ast.Decl) []string {
	var findings []string
	at := func(pos token.Pos) string { return fset.Position(pos).String() }
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !exportedReceiver(d) {
			return nil
		}
		what := "function"
		if d.Recv != nil {
			what = "method"
		}
		switch {
		case d.Doc == nil:
			findings = append(findings, fmt.Sprintf("%s: exported %s %s has no doc comment",
				at(d.Pos()), what, d.Name.Name))
		case !startsWithName(d.Doc.Text(), d.Name.Name, false):
			findings = append(findings, fmt.Sprintf(
				"%s: doc comment on exported %s %s should start with %q (ST1020)",
				at(d.Pos()), what, d.Name.Name, d.Name.Name))
		}
	case *ast.GenDecl:
		if d.Tok != token.TYPE {
			return nil // const/var form is not gated (ST1022 is not enabled)
		}
		for _, spec := range d.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok || !ts.Name.IsExported() {
				continue
			}
			doc := ts.Doc
			if doc == nil && len(d.Specs) == 1 {
				doc = d.Doc
			}
			switch {
			case doc == nil:
				findings = append(findings, fmt.Sprintf("%s: exported type %s has no doc comment",
					at(ts.Pos()), ts.Name.Name))
			case !startsWithName(doc.Text(), ts.Name.Name, true):
				findings = append(findings, fmt.Sprintf(
					"%s: doc comment on exported type %s should start with %q (ST1021)",
					at(ts.Pos()), ts.Name.Name, ts.Name.Name))
			}
		}
	}
	return findings
}

// exportedReceiver reports whether a method's receiver type is exported (a
// doc gate on methods of unexported types would gate private detail).
// Non-methods count as exported.
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.IsExported()
}

// startsWithName reports whether a doc comment begins with the symbol name,
// optionally allowing a leading article (the ST1021 convention for types).
func startsWithName(text, name string, article bool) bool {
	text = strings.TrimSpace(text)
	if strings.HasPrefix(text, name) {
		return true
	}
	if !article {
		return false
	}
	for _, a := range []string{"A ", "An ", "The "} {
		if strings.HasPrefix(text, a+name) {
			return true
		}
	}
	return false
}

// mdLink matches inline markdown links; image links share the shape.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// gateLinks verifies that every relative link target in file exists on disk,
// resolved against the file's directory.
func gateLinks(file string) ([]string, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	base := filepath.Dir(file)
	var findings []string
	for i, line := range strings.Split(string(data), "\n") {
		for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			if idx := strings.IndexByte(target, '#'); idx >= 0 {
				target = target[:idx]
			}
			if target == "" {
				continue
			}
			if _, err := os.Stat(filepath.Join(base, target)); err != nil {
				findings = append(findings, fmt.Sprintf(
					"%s:%d: broken relative link %q", file, i+1, m[1]))
			}
		}
	}
	return findings, nil
}
