// Command ledring renders the all-round-light states of Figure 1 in the
// terminal: the danger display, navigation displays for chosen headings,
// and the (deprecated) vertical take-off/landing animation.
//
//	go run ./cmd/ledring                    # danger + 8 headings
//	go run ./cmd/ledring -heading 135
//	go run ./cmd/ledring -vertical takeoff
package main

import (
	"flag"
	"fmt"
	"os"

	"hdc/internal/geom"
	"hdc/internal/ledring"
)

func main() {
	heading := flag.Float64("heading", -1, "show a single navigation heading (deg)")
	leds := flag.Int("leds", 10, "LED count")
	vertical := flag.String("vertical", "", "animate the deprecated vertical array: takeoff | landing")
	flag.Parse()

	ring, err := ledring.New(ledring.Options{LEDCount: *leds, VerticalArray: 5})
	if err != nil {
		fail(err)
	}

	if *vertical != "" {
		var dir ledring.VerticalDir
		switch *vertical {
		case "takeoff":
			dir = ledring.VerticalTakeOff
		case "landing":
			dir = ledring.VerticalLanding
		default:
			fail(fmt.Errorf("unknown vertical mode %q", *vertical))
		}
		if err := ring.StartVertical(dir); err != nil {
			fail(err)
		}
		fmt.Printf("vertical %s animation (column = tick, row = LED, top row = top LED):\n", *vertical)
		n := len(ring.Vertical())
		rows := make([][]byte, n)
		for i := range rows {
			rows[i] = make([]byte, 10)
			for j := range rows[i] {
				rows[i][j] = '.'
			}
		}
		for tick := 0; tick < 10; tick++ {
			for i, on := range ring.Vertical() {
				if on {
					rows[n-1-i][tick] = '#'
				}
			}
			ring.TickVertical()
		}
		for _, r := range rows {
			fmt.Println(string(r))
		}
		fmt.Println("\n(user feedback: take-off and landing are hard to distinguish — the")
		fmt.Println("array is deprecated and disabled by default; see paper §II and E11)")
		return
	}

	fmt.Println("Danger display (safety default, Fig 1 top):")
	fmt.Println(ring.Render())

	if *heading >= 0 {
		ring.SetNavigation(geom.HeadingFromDeg(*heading))
		fmt.Println(ring.Render())
		return
	}
	for _, deg := range []float64{0, 45, 90, 135, 180, 225, 270, 315} {
		ring.SetNavigation(geom.HeadingFromDeg(deg))
		fmt.Println(ring.Render())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ledring:", err)
	os.Exit(1)
}
