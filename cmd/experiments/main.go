// Command experiments regenerates the full reproduction report (every
// figure and quantitative claim of the paper) as markdown on stdout:
//
//	go run ./cmd/experiments               # full suite
//	go run ./cmd/experiments -only E7      # a single experiment
//	go run ./cmd/experiments -list         # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hdc/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run a single experiment by ID (e.g. E7)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}
	if *only != "" {
		id := strings.ToUpper(*only)
		for _, e := range experiments.All() {
			if e.ID != id {
				continue
			}
			body, err := e.Run()
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
				os.Exit(1)
			}
			fmt.Printf("## %s: %s\n\n%s\n", e.ID, e.Title, body)
			return
		}
		fmt.Fprintf(os.Stderr, "experiments: unknown ID %q (use -list)\n", id)
		os.Exit(1)
	}
	if err := experiments.RunAll(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}
