// Command signrecog exercises the SAX sign-recognition pipeline directly:
// render a sign from a chosen viewpoint, print the silhouette, signature,
// SAX word and the database match — or sweep the azimuth/altitude envelope.
//
//	go run ./cmd/signrecog -sign No -alt 5 -dist 3 -az 65
//	go run ./cmd/signrecog -sweep azimuth
//	go run ./cmd/signrecog -sweep altitude
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"hdc/internal/body"
	"hdc/internal/recognizer"
	"hdc/internal/scene"
	"hdc/internal/timeseries"
	"hdc/internal/vision"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main. Exit codes: 0 ok, 1 operation failed,
// 2 usage error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("signrecog", flag.ContinueOnError)
	fs.SetOutput(stderr)
	signName := fs.String("sign", "No", "sign to show: Attention, Yes, No, Idle")
	alt := fs.Float64("alt", 5, "drone altitude (m)")
	dist := fs.Float64("dist", 3, "horizontal distance (m)")
	az := fs.Float64("az", 0, "relative azimuth (deg)")
	sweep := fs.String("sweep", "", "run a sweep instead: azimuth | altitude")
	showFrame := fs.Bool("frame", false, "print the rendered frame as ASCII art")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	sign, err := parseSign(*signName)
	if err != nil {
		fmt.Fprintln(stderr, "signrecog:", err)
		return 2
	}
	if *sweep != "" && *sweep != "azimuth" && *sweep != "altitude" {
		fmt.Fprintf(stderr, "signrecog: unknown sweep %q\n", *sweep)
		return 2
	}

	rec, err := recognizer.New(recognizer.Config{})
	if err != nil {
		fmt.Fprintln(stderr, "signrecog:", err)
		return 1
	}
	rend := scene.NewRenderer(scene.Config{})
	if err := rec.BuildReferences(rend, scene.ReferenceView()); err != nil {
		fmt.Fprintln(stderr, "signrecog:", err)
		return 1
	}

	switch *sweep {
	case "azimuth":
		err = sweepAzimuth(rec, rend, sign, *alt, *dist, stdout)
	case "altitude":
		err = sweepAltitude(rec, rend, sign, *dist, *az, stdout)
	default:
		err = recognizeOnce(rec, rend, sign, *alt, *dist, *az, *showFrame, stdout)
	}
	if err != nil {
		fmt.Fprintln(stderr, "signrecog:", err)
		return 1
	}
	return 0
}

// sweepAzimuth prints the full-circle recognition envelope and dead angle.
func sweepAzimuth(rec *recognizer.Recognizer, rend *scene.Renderer, sign body.Sign, alt, dist float64, stdout io.Writer) error {
	azs := make([]float64, 0, 72)
	for a := 0.0; a < 360; a += 5 {
		azs = append(azs, a)
	}
	pts, err := recognizer.SweepAzimuth(rec, rend, sign, alt, dist, azs, 1, nil)
	if err != nil {
		return err
	}
	for _, p := range pts {
		fmt.Fprintf(stdout, "az %5.0f°  recognised=%-5v match=%-10s dist=%.2f mirrored=%v\n",
			p.Param, p.Recognized, p.Label, p.Dist, p.Mirrored)
	}
	total, arcs := recognizer.DeadAngle(pts)
	fmt.Fprintf(stdout, "\ndead angle: %.0f° total, arcs %v\n", total, arcs)
	return nil
}

// sweepAltitude prints the altitude envelope at a fixed azimuth.
func sweepAltitude(rec *recognizer.Recognizer, rend *scene.Renderer, sign body.Sign, dist, az float64, stdout io.Writer) error {
	alts := []float64{1, 1.5, 2, 2.5, 3, 3.5, 4, 4.5, 5, 6, 7, 8, 10, 12, 15}
	pts, err := recognizer.SweepAltitude(rec, rend, sign, alts, dist, az, 1, nil)
	if err != nil {
		return err
	}
	for _, p := range pts {
		fmt.Fprintf(stdout, "alt %5.1f m  recognised=%-5v match=%-10s dist=%.2f\n",
			p.Param, p.Recognized, p.Label, p.Dist)
	}
	return nil
}

// recognizeOnce renders one view and prints the full diagnostic trace.
func recognizeOnce(rec *recognizer.Recognizer, rend *scene.Renderer, sign body.Sign, alt, dist, az float64, showFrame bool, stdout io.Writer) error {
	v := scene.View{AltitudeM: alt, DistanceM: dist, AzimuthDeg: az}
	frame, err := rend.Render(sign, v, body.Options{}, nil)
	if err != nil {
		return err
	}
	if showFrame {
		mask := vision.OtsuBinarize(frame)
		for y := 0; y < mask.H; y += 4 {
			var sb strings.Builder
			for x := 0; x < mask.W; x += 2 {
				if mask.At(x, y) != 0 {
					sb.WriteByte('#')
				} else {
					sb.WriteByte('.')
				}
			}
			fmt.Fprintln(stdout, sb.String())
		}
		fmt.Fprintln(stdout)
	}
	res, err := rec.Recognize(frame)
	if err != nil && !errors.Is(err, recognizer.ErrNoSign) {
		return err
	}
	fmt.Fprintf(stdout, "view:       %v\n", v)
	fmt.Fprintf(stdout, "signature:  %s\n", spark(res.Signature))
	fmt.Fprintf(stdout, "SAX word:   %s\n", res.Word.Symbols)
	fmt.Fprintf(stdout, "match:      %s (dist %.2f, mirrored %v)\n", res.Match.Label, res.Match.Dist, res.Match.Mirrored)
	fmt.Fprintf(stdout, "accepted:   %v\n", res.OK)
	fmt.Fprintf(stdout, "latency:    %v (threshold %v, morph %v, contour %v, encode %v, match %v)\n",
		res.Timings.Total, res.Timings.Threshold, res.Timings.Morph,
		res.Timings.Contour, res.Timings.Encode, res.Timings.Match)
	return nil
}

// parseSign maps a flag value to a sign.
func parseSign(s string) (body.Sign, error) {
	switch strings.ToLower(s) {
	case "attention":
		return body.SignAttention, nil
	case "yes":
		return body.SignYes, nil
	case "no":
		return body.SignNo, nil
	case "idle":
		return body.SignIdle, nil
	default:
		return 0, fmt.Errorf("unknown sign %q", s)
	}
}

func spark(s timeseries.Series) string {
	ramp := []rune("▁▂▃▄▅▆▇█")
	lo, hi := s.MinMax()
	if hi == lo {
		hi = lo + 1
	}
	out := make([]rune, len(s))
	for i, v := range s {
		idx := int((v - lo) / (hi - lo) * 7.99)
		if idx > 7 {
			idx = 7
		}
		if idx < 0 {
			idx = 0
		}
		out[i] = ramp[idx]
	}
	return string(out)
}
