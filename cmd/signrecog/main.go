// Command signrecog exercises the SAX sign-recognition pipeline directly:
// render a sign from a chosen viewpoint, print the silhouette, signature,
// SAX word and the database match — or sweep the azimuth/altitude envelope.
//
//	go run ./cmd/signrecog -sign No -alt 5 -dist 3 -az 65
//	go run ./cmd/signrecog -sweep azimuth
//	go run ./cmd/signrecog -sweep altitude
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hdc/internal/body"
	"hdc/internal/recognizer"
	"hdc/internal/scene"
	"hdc/internal/timeseries"
	"hdc/internal/vision"
)

func main() {
	signName := flag.String("sign", "No", "sign to show: Attention, Yes, No, Idle")
	alt := flag.Float64("alt", 5, "drone altitude (m)")
	dist := flag.Float64("dist", 3, "horizontal distance (m)")
	az := flag.Float64("az", 0, "relative azimuth (deg)")
	sweep := flag.String("sweep", "", "run a sweep instead: azimuth | altitude")
	showFrame := flag.Bool("frame", false, "print the rendered frame as ASCII art")
	flag.Parse()

	rec, err := recognizer.New(recognizer.Config{})
	if err != nil {
		fail(err)
	}
	rend := scene.NewRenderer(scene.Config{})
	if err := rec.BuildReferences(rend, scene.ReferenceView()); err != nil {
		fail(err)
	}

	switch *sweep {
	case "azimuth":
		azs := make([]float64, 0, 72)
		for a := 0.0; a < 360; a += 5 {
			azs = append(azs, a)
		}
		pts, err := recognizer.SweepAzimuth(rec, rend, parseSign(*signName), *alt, *dist, azs, 1, nil)
		if err != nil {
			fail(err)
		}
		for _, p := range pts {
			fmt.Printf("az %5.0f°  recognised=%-5v match=%-10s dist=%.2f mirrored=%v\n",
				p.Param, p.Recognized, p.Label, p.Dist, p.Mirrored)
		}
		total, arcs := recognizer.DeadAngle(pts)
		fmt.Printf("\ndead angle: %.0f° total, arcs %v\n", total, arcs)
		return
	case "altitude":
		alts := []float64{1, 1.5, 2, 2.5, 3, 3.5, 4, 4.5, 5, 6, 7, 8, 10, 12, 15}
		pts, err := recognizer.SweepAltitude(rec, rend, parseSign(*signName), alts, *dist, *az, 1, nil)
		if err != nil {
			fail(err)
		}
		for _, p := range pts {
			fmt.Printf("alt %5.1f m  recognised=%-5v match=%-10s dist=%.2f\n",
				p.Param, p.Recognized, p.Label, p.Dist)
		}
		return
	case "":
	default:
		fail(fmt.Errorf("unknown sweep %q", *sweep))
	}

	v := scene.View{AltitudeM: *alt, DistanceM: *dist, AzimuthDeg: *az}
	frame, err := rend.Render(parseSign(*signName), v, body.Options{}, nil)
	if err != nil {
		fail(err)
	}
	if *showFrame {
		mask := vision.OtsuBinarize(frame)
		for y := 0; y < mask.H; y += 4 {
			var sb strings.Builder
			for x := 0; x < mask.W; x += 2 {
				if mask.At(x, y) != 0 {
					sb.WriteByte('#')
				} else {
					sb.WriteByte('.')
				}
			}
			fmt.Println(sb.String())
		}
		fmt.Println()
	}
	res, err := rec.Recognize(frame)
	if err != nil && err != recognizer.ErrNoSign {
		fail(err)
	}
	fmt.Printf("view:       %v\n", v)
	fmt.Printf("signature:  %s\n", spark(res.Signature))
	fmt.Printf("SAX word:   %s\n", res.Word.Symbols)
	fmt.Printf("match:      %s (dist %.2f, mirrored %v)\n", res.Match.Label, res.Match.Dist, res.Match.Mirrored)
	fmt.Printf("accepted:   %v\n", res.OK)
	fmt.Printf("latency:    %v (threshold %v, morph %v, contour %v, encode %v, match %v)\n",
		res.Timings.Total, res.Timings.Threshold, res.Timings.Morph,
		res.Timings.Contour, res.Timings.Encode, res.Timings.Match)
}

func parseSign(s string) body.Sign {
	switch strings.ToLower(s) {
	case "attention":
		return body.SignAttention
	case "yes":
		return body.SignYes
	case "no":
		return body.SignNo
	case "idle":
		return body.SignIdle
	default:
		fail(fmt.Errorf("unknown sign %q", s))
		return 0
	}
}

func spark(s timeseries.Series) string {
	ramp := []rune("▁▂▃▄▅▆▇█")
	lo, hi := s.MinMax()
	if hi == lo {
		hi = lo + 1
	}
	out := make([]rune, len(s))
	for i, v := range s {
		idx := int((v - lo) / (hi - lo) * 7.99)
		if idx > 7 {
			idx = 7
		}
		if idx < 0 {
			idx = 0
		}
		out[i] = ramp[idx]
	}
	return string(out)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "signrecog:", err)
	os.Exit(1)
}
