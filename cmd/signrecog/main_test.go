package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRecognizeOnceOutput drives the default single-view path through the
// extracted run() and checks the diagnostic trace.
func TestRecognizeOnceOutput(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-sign", "No", "-alt", "5", "-dist", "3", "-az", "0", "-frame"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	s := out.String()
	for _, want := range []string{"view:", "SAX word:", "match:      No", "accepted:   true", "latency:"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	if !strings.Contains(s, "#") {
		t.Error("-frame did not print the silhouette")
	}
}

// TestAltitudeSweep runs the altitude sweep end to end (the azimuth sweep
// covers 72 renders and is exercised by the experiment harness instead).
func TestAltitudeSweep(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-sweep", "altitude", "-sign", "Yes"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	s := out.String()
	if !strings.Contains(s, "alt   5.0 m") {
		t.Fatalf("sweep output:\n%s", s)
	}
	// The paper's 2–5 m envelope must recognise at the reference altitude.
	if !strings.Contains(s, "alt   5.0 m  recognised=true") {
		t.Errorf("5 m not recognised:\n%s", s)
	}
}

// TestUsageErrors pins flag-parse and argument validation exits.
func TestUsageErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("bad flag exit %d, want 2", code)
	}
	errOut.Reset()
	if code := run([]string{"-sign", "Wave"}, &out, &errOut); code != 2 {
		t.Fatalf("bad sign exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown sign") {
		t.Fatalf("stderr: %q", errOut.String())
	}
	errOut.Reset()
	if code := run([]string{"-sweep", "sideways"}, &out, &errOut); code != 2 {
		t.Fatalf("bad sweep exit %d, want 2", code)
	}
	// Physically impossible view → operation failure, exit 1.
	errOut.Reset()
	if code := run([]string{"-alt", "1000"}, &out, &errOut); code != 1 {
		t.Fatalf("bad view exit %d, want 1", code)
	}
}
