// Command hdcsim runs a full orchard trap-monitoring mission — the paper's
// §I use case — and prints the mission report and event transcript.
//
//	go run ./cmd/hdcsim -seed 7 -rows 6 -cols 8 -humans 4 -v
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"hdc/internal/core"
	"hdc/internal/geom"
	"hdc/internal/mission"
	"hdc/internal/orchard"
	"hdc/internal/pipeline"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	rows := flag.Int("rows", 4, "orchard tree rows")
	cols := flag.Int("cols", 6, "trees per row")
	humans := flag.Int("humans", 3, "collaborators in the orchard")
	trapEvery := flag.Int("trap-every", 3, "a trap every n-th tree")
	warmup := flag.Duration("warmup", 2*time.Hour, "pest accumulation before the mission")
	drones := flag.Int("drones", 1, "fleet size")
	privatePools := flag.Bool("private-pools", false,
		"give each fleet drone a private recognition pool instead of one fleet-shared pool")
	poolWorkers := flag.Int("pool-workers", 0,
		"fleet-shared pool worker count (default NumCPU)")
	csvOut := flag.Bool("csv", false, "emit the event transcript as CSV")
	verbose := flag.Bool("v", false, "print the full event transcript")
	flag.Parse()

	world, err := orchard.Generate(orchard.Config{
		Rows: *rows, Cols: *cols, TrapEvery: *trapEvery,
		Humans: *humans, PestRatePerHour: 30,
	}, rand.New(rand.NewSource(*seed)))
	if err != nil {
		fail(err)
	}
	world.Step(*warmup)

	if *drones > 1 {
		runFleet(*drones, *seed, world, !*privatePools, *poolWorkers)
		return
	}

	sys, err := core.NewSystem(
		core.WithSeed(*seed),
		core.WithHome(geom.V3(-6, -6, 0)),
	)
	if err != nil {
		fail(err)
	}
	m, err := mission.New(sys, world, mission.Config{})
	if err != nil {
		fail(err)
	}
	rep, err := m.Run()
	if err != nil {
		fail(err)
	}

	fmt.Println("mission report:", rep)
	fmt.Println()
	fmt.Println("per-trap visits:")
	for _, v := range rep.Visits {
		line := fmt.Sprintf("  trap %2d: ", v.TrapID)
		if v.Negotiated {
			line += fmt.Sprintf("negotiated (%v) ", v.Outcome)
		}
		if v.Read {
			line += fmt.Sprintf("read, %d pests", v.PestCount)
		} else {
			line += "not read"
		}
		fmt.Println(line)
	}
	switch {
	case *csvOut:
		fmt.Println()
		fmt.Print(sys.Log.EventsCSV())
	case *verbose:
		fmt.Println()
		fmt.Println("event transcript:")
		fmt.Print(sys.Log.String())
	}
}

// runFleet executes a multi-drone mission and prints the fleet report. By
// default the drones share one recognition pool (recognition capacity as a
// fleet-level resource, with per-drone attribution); -private-pools restores
// one pool per drone.
func runFleet(n int, seed int64, world *orchard.Orchard, sharedPool bool, poolWorkers int) {
	droneOpts := func(i int) []core.Option {
		return []core.Option{
			core.WithSeed(seed + int64(i)),
			core.WithHome(geom.V3(-6-float64(3*i), -6, 0)),
		}
	}
	var fleet *mission.Fleet
	var err error
	if sharedPool {
		fleet, err = mission.NewPooledFleet(n, world, mission.Config{},
			[]core.Option{core.WithPipelineConfig(pipeline.Config{Workers: poolWorkers})},
			droneOpts)
	} else {
		fleet, err = mission.NewFleet(n, world, mission.Config{}, func(i int) (*core.System, error) {
			return core.NewSystem(droneOpts(i)...)
		})
	}
	if err != nil {
		fail(err)
	}
	defer fleet.Close()
	rep, err := fleet.Run()
	if err != nil {
		fail(err)
	}
	fmt.Printf("fleet of %d: %d/%d traps read, %d negotiations (%d granted), makespan %s, mean battery %.0f%%\n",
		n, rep.TrapsRead, rep.TrapsTotal, rep.Negotiations, rep.Granted,
		rep.MaxDroneTime.Truncate(time.Second), rep.MeanBatteryUsed*100)
	for i, r := range rep.PerDrone {
		fmt.Printf("  drone %d: %s\n", i, r)
	}
	if stats, shared := fleet.PoolStats(); shared {
		fmt.Printf("shared recognition pool: %d workers, %d frames recognised\n",
			stats.Workers, poolFrames(stats))
		for _, o := range stats.Owners {
			fmt.Printf("  %s: %d frames, %d ring accepts, %d shed\n",
				o.Label, o.Frames, o.IngestAccepted, o.IngestDropped)
		}
	}
}

// poolFrames totals the per-owner completed-frame counters.
func poolFrames(stats pipeline.Stats) uint64 {
	var total uint64
	for _, o := range stats.Owners {
		total += o.Frames
	}
	return total
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hdcsim:", err)
	os.Exit(1)
}
